package autoscale

import (
	"fmt"
	"math/rand"
	"sort"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// EngineKind distinguishes the two evaluation techniques of §6.7.
type EngineKind int

// Engine kinds.
const (
	// InVitro is the fine-grained engine: per-task execution, exact
	// dependency tracking and task completion times — the stand-in for the
	// paper's DAS cluster emulation.
	InVitro EngineKind = iota + 1
	// InSilico is the independently coded coarse engine: per-job fluid work
	// model with processor sharing — the stand-in for the paper's simulator.
	InSilico
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	if k == InVitro {
		return "in-vitro"
	}
	return "in-silico"
}

// EngineConfig parameterizes one elasticity run.
//
// Both engines are event-driven on the shared sim.Kernel: job arrivals, VM
// boot completions, autoscaler evaluations, and task/job completions are
// scheduled events at their exact virtual times. Step is the sampling cadence
// of the supply/demand series (and of the core-seconds integral), kept so the
// Herbst-style elasticity metrics remain comparable with the historical
// fixed-timestep engines.
type EngineConfig struct {
	Kind         EngineKind
	Step         float64 // supply/demand sampling cadence (s)
	EvalInterval float64 // autoscaler period (s)
	BootDelay    float64 // VM provisioning latency (s)
	MaxCores     int     // provider capacity cap
	CorePerVM    int     // cores per provisioned VM
	// BootFailureRate is failure injection: each requested VM fails to boot
	// with this probability (the request is lost; the autoscaler must
	// re-provision on a later evaluation). In-vitro engine only.
	BootFailureRate float64
	Seed            int64
}

// DefaultVitroConfig is the fine-grained configuration.
func DefaultVitroConfig() EngineConfig {
	return EngineConfig{Kind: InVitro, Step: 1, EvalInterval: 30, BootDelay: 60, MaxCores: 512, CorePerVM: 4}
}

// DefaultSilicoConfig is the coarse configuration.
func DefaultSilicoConfig() EngineConfig {
	return EngineConfig{Kind: InSilico, Step: 30, EvalInterval: 30, BootDelay: 60, MaxCores: 512, CorePerVM: 4}
}

// RunStats is the outcome of one (autoscaler, workload, engine) run.
type RunStats struct {
	Autoscaler string
	Engine     string

	// Supply/Demand time series, one sample per Step.
	Times  []float64
	Supply []int
	Demand []int

	// Per-job response times and deadline outcomes.
	JobResponse  []float64
	JobSlowdown  []float64
	DeadlineMiss int
	JobsDone     int

	// CoreSeconds actually provisioned (integral of supply).
	CoreSeconds float64
	Horizon     float64
}

type vitroTask struct {
	task      *workload.Task
	job       *workload.Job
	remaining float64
	running   bool
	depsLeft  int
	// finishAt is the exact completion instant, set when the task starts.
	finishAt float64
}

type silicoJob struct {
	job      *workload.Job
	workLeft float64 // CPU-seconds
	width    int     // max useful parallelism
	started  bool
	start    float64
}

// Run executes the trace under the autoscaler and returns statistics.
// The run ends when all jobs complete.
func Run(cfg EngineConfig, as Autoscaler, tr *workload.Trace) (*RunStats, error) {
	if cfg.Step <= 0 || cfg.EvalInterval <= 0 || cfg.CorePerVM <= 0 {
		return nil, fmt.Errorf("autoscale: bad config %+v", cfg)
	}
	switch cfg.Kind {
	case InVitro:
		return runVitro(cfg, as, tr)
	case InSilico:
		return runSilico(cfg, as, tr)
	default:
		return nil, fmt.Errorf("autoscale: unknown engine kind %d", cfg.Kind)
	}
}

// sortedJobs validates and orders the trace by submission time.
func sortedJobs(tr *workload.Trace, validate bool) ([]*workload.Job, error) {
	jobs := append([]*workload.Job(nil), tr.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
	if validate {
		for _, j := range jobs {
			if err := j.ValidateDAG(); err != nil {
				return nil, fmt.Errorf("autoscale: %w", err)
			}
		}
	}
	return jobs, nil
}

// vitroState is the event-driven fine-grained engine: per-task execution on
// the shared simulation kernel. Arrivals fire at exact submit times, VM boots
// complete one BootDelay after the autoscaler requested them, tasks finish at
// their exact remaining-runtime instants, and the autoscaler is an
// EvalInterval-periodic event. A Step-periodic sampling event records the
// supply/demand series.
type vitroState struct {
	cfg      EngineConfig
	as       Autoscaler
	st       *RunStats
	failRand *rand.Rand

	jobs       []*workload.Job
	arrived    int
	tasks      map[int]*vitroTask
	dependents map[int][]int
	ready      []*vitroTask
	running    []*vitroTask
	usedCores  int // cores held by running tasks
	readyCores int // cores wanted by ready tasks
	cores      int // booted cores
	booting    int // cores requested but not usable yet
	history    []int
	jobLeft    map[int]int
	jobStart   map[int]float64
	jobSubmit  map[int]float64

	evalRef   sim.EventRef
	sampleRef sim.EventRef
	finished  bool
}

func runVitro(cfg EngineConfig, as Autoscaler, tr *workload.Trace) (*RunStats, error) {
	jobs, err := sortedJobs(tr, true)
	if err != nil {
		return nil, err
	}
	v := &vitroState{
		cfg:        cfg,
		as:         as,
		st:         &RunStats{Autoscaler: as.Name(), Engine: cfg.Kind.String()},
		failRand:   rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		jobs:       jobs,
		tasks:      map[int]*vitroTask{},
		dependents: map[int][]int{},
		jobLeft:    map[int]int{},
		jobStart:   map[int]float64{},
		jobSubmit:  map[int]float64{},
	}

	if len(jobs) == 0 {
		return v.st, nil
	}
	k := sim.NewKernel(cfg.Seed)
	// Arrivals are batch-scheduled up front with the lowest sequence numbers
	// (AtBatch assigns them in order), so a job submitted exactly at an
	// evaluation instant is admitted before the autoscaler observes demand —
	// the admission order of the historical step-driven engine.
	arrivals := make([]sim.BatchEvent, len(jobs))
	for i, j := range jobs {
		j := j
		arrivals[i] = sim.BatchEvent{
			At: sim.Time(j.Submit), Name: "arrive",
			Fn: func(k *sim.Kernel) { v.arrive(k, j) },
		}
	}
	k.Reserve(len(arrivals) + 2)
	k.AtBatch(arrivals)
	v.evalRef = k.At(0, "eval", v.eval)
	v.sampleRef = k.At(0, "sample", v.sample)
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("autoscale: %w", err)
	}
	if !v.finished {
		v.st.Horizon = float64(k.Now())
	}
	return v.st, nil
}

// arrive admits one job: its tasks join the dependency graph and its root
// tasks become ready.
func (v *vitroState) arrive(k *sim.Kernel, j *workload.Job) {
	v.arrived++
	v.jobLeft[j.ID] = len(j.Tasks)
	v.jobSubmit[j.ID] = float64(j.Submit)
	for i := range j.Tasks {
		t := &j.Tasks[i]
		vt := &vitroTask{task: t, job: j, remaining: float64(t.Runtime), depsLeft: len(t.Deps)}
		v.tasks[t.ID] = vt
		for _, d := range t.Deps {
			v.dependents[d] = append(v.dependents[d], t.ID)
		}
		if vt.depsLeft == 0 {
			v.ready = append(v.ready, vt)
			v.readyCores += t.CPUs
		}
	}
	v.dispatch(k)
	v.checkDone(k) // a job with no tasks must not stall the run
}

// dispatch starts ready tasks FCFS onto free booted cores, scheduling their
// exact completion events.
func (v *vitroState) dispatch(k *sim.Kernel) {
	free := v.cores - v.usedCores
	var stillReady []*vitroTask
	for i, vt := range v.ready {
		if vt.task.CPUs <= free {
			free -= vt.task.CPUs
			v.readyCores -= vt.task.CPUs
			v.usedCores += vt.task.CPUs
			vt.running = true
			vt.finishAt = float64(k.Now()) + vt.remaining
			v.running = append(v.running, vt)
			if _, ok := v.jobStart[vt.job.ID]; !ok {
				v.jobStart[vt.job.ID] = float64(k.Now())
			}
			vt := vt
			k.After(sim.Duration(vt.remaining), "task-done", func(k *sim.Kernel) { v.complete(k, vt) })
		} else {
			stillReady = append(stillReady, v.ready[i])
		}
	}
	v.ready = stillReady
}

// complete finishes one task: dependents may become ready, the job may
// finish, and freed cores are re-dispatched.
func (v *vitroState) complete(k *sim.Kernel, vt *vitroTask) {
	now := float64(k.Now())
	vt.running = false
	vt.remaining = 0
	v.usedCores -= vt.task.CPUs
	for i, rt := range v.running {
		if rt == vt {
			v.running = append(v.running[:i], v.running[i+1:]...)
			break
		}
	}
	for _, depID := range v.dependents[vt.task.ID] {
		dt := v.tasks[depID]
		dt.depsLeft--
		if dt.depsLeft == 0 {
			v.ready = append(v.ready, dt)
			v.readyCores += dt.task.CPUs
		}
	}
	v.jobLeft[vt.job.ID]--
	if v.jobLeft[vt.job.ID] == 0 {
		finishJob(v.st, vt.job, v.jobSubmit[vt.job.ID], v.jobStart[vt.job.ID], now)
	}
	v.dispatch(k)
	v.checkDone(k)
}

// done reports whether all work has been admitted and completed.
func (v *vitroState) done() bool {
	return v.arrived == len(v.jobs) && len(v.ready) == 0 && len(v.running) == 0
}

// checkDone ends the run by cancelling the periodic events once no work
// remains; the kernel then drains and Run returns.
func (v *vitroState) checkDone(k *sim.Kernel) {
	if v.finished || !v.done() {
		return
	}
	v.finished = true
	v.st.Horizon = float64(k.Now())
	v.evalRef.Cancel()
	v.sampleRef.Cancel()
}

// demand is the number of cores wanted right now.
func (v *vitroState) demand() int { return v.usedCores + v.readyCores }

// eval is the periodic autoscaler evaluation: observe, retarget, provision
// (with failure injection) or deprovision idle capacity.
func (v *vitroState) eval(k *sim.Kernel) {
	now := float64(k.Now())
	demand := v.demand()
	v.history = append(v.history, demand)
	obs := Observation{
		Now:          now,
		Demand:       demand,
		Supply:       v.cores + v.booting,
		History:      v.history,
		BootDelay:    v.cfg.BootDelay,
		EvalInterval: v.cfg.EvalInterval,
	}
	if v.as.WorkflowAware() {
		obs.SoonEligible = soonEligibleEvent(v.running, v.dependents, v.tasks, float64(k.Now()), v.cfg.BootDelay)
	}
	target := v.as.Target(obs)
	if target > v.cfg.MaxCores {
		target = v.cfg.MaxCores
	}
	current := v.cores + v.booting
	if target > current {
		need := target - current
		vms := (need + v.cfg.CorePerVM - 1) / v.cfg.CorePerVM
		for i := 0; i < vms; i++ {
			// Failure injection: the request may be silently lost.
			if v.cfg.BootFailureRate > 0 && v.failRand.Float64() < v.cfg.BootFailureRate {
				continue
			}
			v.booting += v.cfg.CorePerVM
			k.After(sim.Duration(v.cfg.BootDelay), "vm-boot", v.bootDone)
		}
	} else if target < current {
		// Deprovision idle booted cores only (running tasks keep theirs).
		idle := v.cores - v.usedCores
		drop := current - target
		if drop > idle {
			drop = idle
		}
		v.cores -= drop
	}
	v.evalRef = k.After(sim.Duration(v.cfg.EvalInterval), "eval", v.eval)
}

// bootDone lands one VM's cores and dispatches onto them.
func (v *vitroState) bootDone(k *sim.Kernel) {
	v.booting -= v.cfg.CorePerVM
	v.cores += v.cfg.CorePerVM
	v.dispatch(k)
}

// sample records one point of the supply/demand series and accumulates the
// provisioned-capacity integral.
func (v *vitroState) sample(k *sim.Kernel) {
	v.st.Times = append(v.st.Times, float64(k.Now()))
	v.st.Supply = append(v.st.Supply, v.cores+v.booting)
	v.st.Demand = append(v.st.Demand, v.demand())
	v.st.CoreSeconds += float64(v.cores) * v.cfg.Step
	v.sampleRef = k.After(sim.Duration(v.cfg.Step), "sample", v.sample)
}

// soonEligibleEvent counts cores of tasks whose last dependency finishes
// within horizon, from the exact completion times of running tasks.
func soonEligibleEvent(running []*vitroTask, dependents map[int][]int, tasks map[int]*vitroTask, now, horizon float64) int {
	cores := 0
	for _, rt := range running {
		if rt.finishAt-now > horizon {
			continue
		}
		for _, depID := range dependents[rt.task.ID] {
			dt := tasks[depID]
			if dt.depsLeft == 1 { // this finishing task is the last blocker
				cores += dt.task.CPUs
			}
		}
	}
	return cores
}

// finishJob records job-completion statistics.
func finishJob(st *RunStats, j *workload.Job, submit, start, now float64) {
	resp := now - submit
	st.JobResponse = append(st.JobResponse, resp)
	run := now - start
	den := run
	if den < 10 {
		den = 10
	}
	sd := resp / den
	if sd < 1 {
		sd = 1
	}
	st.JobSlowdown = append(st.JobSlowdown, sd)
	if j.Deadline > 0 && resp > float64(j.Deadline) {
		st.DeadlineMiss++
	}
	st.JobsDone++
}

// silicoWidth is the coarse engine's fluid parallelism cap for a job.
func silicoWidth(j *workload.Job) int {
	w := 0
	for _, t := range j.Tasks {
		w += t.CPUs
	}
	// Fluid approximation: at most half the total task cores are usable
	// concurrently (levels constrain workflows).
	if j.IsWorkflow() {
		w = (w + 1) / 2
	}
	if w < 1 {
		w = 1
	}
	return w
}

// silicoState is the event-driven coarse engine: each job is a fluid amount
// of CPU-work drained by processor sharing. Between events the share of every
// active job is constant, so the earliest zero-crossing of any job's
// remaining work is an exact, schedulable completion instant; arrivals,
// boots, and evaluations change the shares and reschedule it.
type silicoState struct {
	cfg EngineConfig
	as  Autoscaler
	st  *RunStats

	jobs    []*workload.Job
	arrived int
	active  []*silicoJob
	cores   int
	booting int
	history []int

	lastAdvance   float64
	completionRef sim.EventRef
	evalRef       sim.EventRef
	sampleRef     sim.EventRef
	finished      bool
}

func runSilico(cfg EngineConfig, as Autoscaler, tr *workload.Trace) (*RunStats, error) {
	jobs, err := sortedJobs(tr, false)
	if err != nil {
		return nil, err
	}
	s := &silicoState{
		cfg:  cfg,
		as:   as,
		st:   &RunStats{Autoscaler: as.Name(), Engine: cfg.Kind.String()},
		jobs: jobs,
	}
	if len(jobs) == 0 {
		return s.st, nil
	}
	k := sim.NewKernel(cfg.Seed)
	arrivals := make([]sim.BatchEvent, len(jobs))
	for i, j := range jobs {
		j := j
		arrivals[i] = sim.BatchEvent{
			At: sim.Time(j.Submit), Name: "arrive",
			Fn: func(k *sim.Kernel) { s.arrive(k, j) },
		}
	}
	k.Reserve(len(arrivals) + 2)
	k.AtBatch(arrivals)
	s.evalRef = k.At(0, "eval", s.eval)
	s.sampleRef = k.At(0, "sample", s.sample)
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("autoscale: %w", err)
	}
	if !s.finished {
		s.st.Horizon = float64(k.Now())
	}
	return s.st, nil
}

func (s *silicoState) demand() int {
	d := 0
	for _, sj := range s.active {
		d += sj.width
	}
	return d
}

// shares returns the per-job core share under proportional sharing capped by
// each job's width — the same allocation rule as the historical step engine,
// applied to the instantaneous state.
func (s *silicoState) shares() []float64 {
	demand := s.demand()
	available := float64(s.cores)
	out := make([]float64, len(s.active))
	for i, sj := range s.active {
		share := 0.0
		if demand > 0 {
			share = float64(s.cores) * float64(sj.width) / float64(demand)
		}
		if share > float64(sj.width) {
			share = float64(sj.width)
		}
		if share > available {
			share = available
		}
		available -= share
		out[i] = share
	}
	return out
}

// advanceTo drains fluid work at the shares that held since the last event.
func (s *silicoState) advanceTo(now float64) {
	dt := now - s.lastAdvance
	if dt > 0 && len(s.active) > 0 {
		for i, share := range s.shares() {
			s.active[i].workLeft -= share * dt
		}
	}
	s.lastAdvance = now
}

// reschedule recomputes the next exact job-completion instant from the
// current shares and replaces the pending completion event.
func (s *silicoState) reschedule(k *sim.Kernel) {
	s.completionRef.Cancel()
	shares := s.shares()
	best := -1.0
	for i, sj := range s.active {
		// A drained job completes now even with a zero share.
		if sj.workLeft <= 1e-6 {
			best = 0
			break
		}
		if shares[i] <= 0 {
			continue
		}
		t := sj.workLeft / shares[i]
		if best < 0 || t < best {
			best = t
		}
	}
	if best >= 0 {
		s.completionRef = k.After(sim.Duration(best), "job-done", s.complete)
	}
}

func (s *silicoState) arrive(k *sim.Kernel, j *workload.Job) {
	now := float64(k.Now())
	s.advanceTo(now)
	s.arrived++
	s.active = append(s.active, &silicoJob{
		job: j, workLeft: j.TotalWork(), width: silicoWidth(j),
		started: true, start: now,
	})
	s.reschedule(k)
}

// complete retires every job whose fluid work has drained to zero.
func (s *silicoState) complete(k *sim.Kernel) {
	now := float64(k.Now())
	s.advanceTo(now)
	var still []*silicoJob
	for _, sj := range s.active {
		if sj.workLeft > 1e-6 {
			still = append(still, sj)
			continue
		}
		finishJob(s.st, sj.job, float64(sj.job.Submit), sj.start, now)
	}
	s.active = still
	s.reschedule(k)
	s.checkDone(k)
}

func (s *silicoState) checkDone(k *sim.Kernel) {
	if s.finished || s.arrived != len(s.jobs) || len(s.active) > 0 {
		return
	}
	s.finished = true
	s.st.Horizon = float64(k.Now())
	s.completionRef.Cancel()
	s.evalRef.Cancel()
	s.sampleRef.Cancel()
}

func (s *silicoState) eval(k *sim.Kernel) {
	now := float64(k.Now())
	s.advanceTo(now)
	demand := s.demand()
	s.history = append(s.history, demand)
	obs := Observation{
		Now:          now,
		Demand:       demand,
		Supply:       s.cores + s.booting,
		History:      s.history,
		BootDelay:    s.cfg.BootDelay,
		EvalInterval: s.cfg.EvalInterval,
	}
	if s.as.WorkflowAware() {
		// The coarse engine approximates the eligible wave as 25% of
		// outstanding width — an intentionally different model from the
		// in-vitro engine.
		obs.SoonEligible = demand / 4
	}
	target := s.as.Target(obs)
	if target > s.cfg.MaxCores {
		target = s.cfg.MaxCores
	}
	current := s.cores + s.booting
	if target > current {
		need := target - current
		vms := (need + s.cfg.CorePerVM - 1) / s.cfg.CorePerVM
		for i := 0; i < vms; i++ {
			s.booting += s.cfg.CorePerVM
			k.After(sim.Duration(s.cfg.BootDelay), "vm-boot", s.bootDone)
		}
	} else if target < current && s.cores > 0 {
		drop := current - target
		if drop > s.cores {
			drop = s.cores
		}
		s.cores -= drop
		s.reschedule(k)
	}
	s.evalRef = k.After(sim.Duration(s.cfg.EvalInterval), "eval", s.eval)
}

func (s *silicoState) bootDone(k *sim.Kernel) {
	now := float64(k.Now())
	s.advanceTo(now)
	s.booting -= s.cfg.CorePerVM
	s.cores += s.cfg.CorePerVM
	s.reschedule(k)
}

func (s *silicoState) sample(k *sim.Kernel) {
	now := float64(k.Now())
	s.advanceTo(now)
	s.st.Times = append(s.st.Times, now)
	s.st.Supply = append(s.st.Supply, s.cores+s.booting)
	s.st.Demand = append(s.st.Demand, s.demand())
	s.st.CoreSeconds += float64(s.cores) * s.cfg.Step
	s.sampleRef = k.After(sim.Duration(s.cfg.Step), "sample", s.sample)
}
