package autoscale

// This file preserves the historical fixed-timestep engines verbatim, as the
// test-only reference implementation for the event-driven engines in
// engine.go. The parity tests (parity_test.go) prove that the kernel-based
// engines reproduce these loops' RunStats within tolerance; the step loops
// are compiled only into the test binary and are not part of the library.

import (
	"fmt"
	"math/rand"
	"sort"

	"atlarge/internal/workload"
)

// bootingVM tracks capacity that was requested but is not usable yet.
type bootingVM struct {
	readyAt float64
	cores   int
}

// bootingCores sums cores still provisioning.
func bootingCores(bs []bootingVM) int {
	n := 0
	for _, b := range bs {
		n += b.cores
	}
	return n
}

// runVitroStep is the historical fine-grained task-level engine: a fixed
// Step-second loop that admits arrivals, lands boots, evaluates the
// autoscaler, dispatches, records, and decrements remaining runtimes.
func runVitroStep(cfg EngineConfig, as Autoscaler, tr *workload.Trace) (*RunStats, error) {
	st := &RunStats{Autoscaler: as.Name(), Engine: cfg.Kind.String()}
	failRand := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))

	jobs := append([]*workload.Job(nil), tr.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
	for _, j := range jobs {
		if err := j.ValidateDAG(); err != nil {
			return nil, fmt.Errorf("autoscale: %w", err)
		}
	}

	var (
		now        float64
		nextEval   float64
		arrived    int
		tasks      = map[int]*vitroTask{} // task ID -> state
		dependents = map[int][]int{}      // task ID -> dependent task IDs
		ready      []*vitroTask
		running    []*vitroTask
		cores      int // booted cores
		booting    []bootingVM
		history    []int
		jobLeft    = map[int]int{}
		jobStart   = map[int]float64{}
		jobSubmit  = map[int]float64{}
	)

	done := func() bool {
		return arrived == len(jobs) && len(ready) == 0 && len(running) == 0
	}

	for !done() {
		// Admit arrivals.
		for arrived < len(jobs) && float64(jobs[arrived].Submit) <= now {
			j := jobs[arrived]
			arrived++
			jobLeft[j.ID] = len(j.Tasks)
			jobSubmit[j.ID] = float64(j.Submit)
			for i := range j.Tasks {
				t := &j.Tasks[i]
				vt := &vitroTask{task: t, job: j, remaining: float64(t.Runtime), depsLeft: len(t.Deps)}
				tasks[t.ID] = vt
				for _, d := range t.Deps {
					dependents[d] = append(dependents[d], t.ID)
				}
				if vt.depsLeft == 0 {
					ready = append(ready, vt)
				}
			}
		}

		// Boot completions.
		var stillBooting []bootingVM
		for _, b := range booting {
			if b.readyAt <= now {
				cores += b.cores
			} else {
				stillBooting = append(stillBooting, b)
			}
		}
		booting = stillBooting

		// Demand: running + ready cores.
		usedCores := 0
		for _, rt := range running {
			usedCores += rt.task.CPUs
		}
		demand := usedCores
		for _, vt := range ready {
			demand += vt.task.CPUs
		}

		// Autoscaler evaluation.
		if now >= nextEval {
			nextEval = now + cfg.EvalInterval
			history = append(history, demand)
			obs := Observation{
				Now:          now,
				Demand:       demand,
				Supply:       cores + bootingCores(booting),
				History:      history,
				BootDelay:    cfg.BootDelay,
				EvalInterval: cfg.EvalInterval,
			}
			if as.WorkflowAware() {
				obs.SoonEligible = soonEligibleStep(running, dependents, tasks, cfg.BootDelay)
			}
			target := as.Target(obs)
			if target > cfg.MaxCores {
				target = cfg.MaxCores
			}
			current := cores + bootingCores(booting)
			if target > current {
				need := target - current
				vms := (need + cfg.CorePerVM - 1) / cfg.CorePerVM
				for v := 0; v < vms; v++ {
					// Failure injection: the request may be silently lost.
					if cfg.BootFailureRate > 0 && failRand.Float64() < cfg.BootFailureRate {
						continue
					}
					booting = append(booting, bootingVM{readyAt: now + cfg.BootDelay, cores: cfg.CorePerVM})
				}
			} else if target < current {
				// Deprovision idle booted cores only (running tasks keep theirs).
				idle := cores - usedCores
				drop := current - target
				if drop > idle {
					drop = idle
				}
				cores -= drop
			}
		}

		// Dispatch ready tasks FCFS onto free cores.
		free := cores - usedCores
		var stillReady []*vitroTask
		for _, vt := range ready {
			if vt.task.CPUs <= free {
				free -= vt.task.CPUs
				vt.running = true
				running = append(running, vt)
				if _, ok := jobStart[vt.job.ID]; !ok {
					jobStart[vt.job.ID] = now
				}
			} else {
				stillReady = append(stillReady, vt)
			}
		}
		ready = stillReady

		// Record series.
		st.Times = append(st.Times, now)
		st.Supply = append(st.Supply, cores+bootingCores(booting))
		st.Demand = append(st.Demand, demand)
		st.CoreSeconds += float64(cores) * cfg.Step

		// Advance running tasks.
		now += cfg.Step
		var stillRunning []*vitroTask
		for _, rt := range running {
			rt.remaining -= cfg.Step
			if rt.remaining > 1e-9 {
				stillRunning = append(stillRunning, rt)
				continue
			}
			// Completed.
			for _, depID := range dependents[rt.task.ID] {
				dt := tasks[depID]
				dt.depsLeft--
				if dt.depsLeft == 0 {
					ready = append(ready, dt)
				}
			}
			jobLeft[rt.job.ID]--
			if jobLeft[rt.job.ID] == 0 {
				finishJob(st, rt.job, jobSubmit[rt.job.ID], jobStart[rt.job.ID], now)
			}
		}
		running = stillRunning
	}
	st.Horizon = now
	return st, nil
}

// soonEligibleStep counts cores of tasks whose last dependency finishes within
// horizon, estimated from step-quantized remaining runtimes.
func soonEligibleStep(running []*vitroTask, dependents map[int][]int, tasks map[int]*vitroTask, horizon float64) int {
	cores := 0
	for _, rt := range running {
		if rt.remaining > horizon {
			continue
		}
		for _, depID := range dependents[rt.task.ID] {
			dt := tasks[depID]
			if dt.depsLeft == 1 { // this finishing task is the last blocker
				cores += dt.task.CPUs
			}
		}
	}
	return cores
}

// runSilicoStep is the historical coarse engine: each job is a fluid amount
// of CPU-work with a parallelism cap, drained in fixed Step-second slices.
func runSilicoStep(cfg EngineConfig, as Autoscaler, tr *workload.Trace) (*RunStats, error) {
	st := &RunStats{Autoscaler: as.Name(), Engine: cfg.Kind.String()}

	jobs := append([]*workload.Job(nil), tr.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })

	var (
		now      float64
		nextEval float64
		arrived  int
		active   []*silicoJob
		cores    int
		booting  []bootingVM
		history  []int
	)

	for arrived < len(jobs) || len(active) > 0 {
		for arrived < len(jobs) && float64(jobs[arrived].Submit) <= now {
			j := jobs[arrived]
			arrived++
			active = append(active, &silicoJob{job: j, workLeft: j.TotalWork(), width: silicoWidth(j)})
		}

		var stillBooting []bootingVM
		for _, b := range booting {
			if b.readyAt <= now {
				cores += b.cores
			} else {
				stillBooting = append(stillBooting, b)
			}
		}
		booting = stillBooting

		demand := 0
		for _, sj := range active {
			demand += sj.width
		}

		if now >= nextEval {
			nextEval = now + cfg.EvalInterval
			history = append(history, demand)
			obs := Observation{
				Now:          now,
				Demand:       demand,
				Supply:       cores + bootingCores(booting),
				History:      history,
				BootDelay:    cfg.BootDelay,
				EvalInterval: cfg.EvalInterval,
			}
			if as.WorkflowAware() {
				// The coarse engine approximates the eligible wave as 25% of
				// outstanding width — an intentionally different model from
				// the in-vitro engine.
				obs.SoonEligible = demand / 4
			}
			target := as.Target(obs)
			if target > cfg.MaxCores {
				target = cfg.MaxCores
			}
			current := cores + bootingCores(booting)
			if target > current {
				need := target - current
				vms := (need + cfg.CorePerVM - 1) / cfg.CorePerVM
				for v := 0; v < vms; v++ {
					booting = append(booting, bootingVM{readyAt: now + cfg.BootDelay, cores: cfg.CorePerVM})
				}
			} else if target < current && cores > 0 {
				drop := current - target
				if drop > cores {
					drop = cores
				}
				cores -= drop
			}
		}

		st.Times = append(st.Times, now)
		st.Supply = append(st.Supply, cores+bootingCores(booting))
		st.Demand = append(st.Demand, demand)
		st.CoreSeconds += float64(cores) * cfg.Step

		// Share cores proportionally by width, capped per job.
		available := float64(cores)
		var stillActive []*silicoJob
		for _, sj := range active {
			if !sj.started {
				sj.started = true
				sj.start = now
			}
			share := 0.0
			if demand > 0 {
				share = float64(cores) * float64(sj.width) / float64(demand)
			}
			if share > float64(sj.width) {
				share = float64(sj.width)
			}
			if share > available {
				share = available
			}
			available -= share
			sj.workLeft -= share * cfg.Step
			if sj.workLeft > 1e-9 {
				stillActive = append(stillActive, sj)
				continue
			}
			finishJob(st, sj.job, float64(sj.job.Submit), sj.start, now+cfg.Step)
		}
		active = stillActive
		now += cfg.Step
	}
	st.Horizon = now
	return st, nil
}
