package autoscale

import (
	"fmt"
	"math/rand"
	"sort"

	"atlarge/internal/stats"
	"atlarge/internal/workload"
)

// ExperimentConfig scales the §6.7 experiment.
type ExperimentConfig struct {
	Jobs int
	Seed int64
}

// DefaultExperimentConfig returns the benchmark-scale configuration.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{Jobs: 40, Seed: 42}
}

// ExperimentResult is the full §6.7 outcome: per-autoscaler metrics under
// both engines, the two rankings, the grading, cost analysis, and the
// in-vitro/in-silico corroboration.
type ExperimentResult struct {
	Vitro  map[string]ElasticityMetrics
	Silico map[string]ElasticityMetrics

	AvgRankVitro map[string]float64
	HeadToHead   map[string]map[string]int
	GradesVitro  map[string]float64

	// CostByModel maps cost-model name -> autoscaler -> dollars (vitro).
	CostByModel map[string]map[string]float64

	// RankCorrelation is the Spearman correlation between the vitro and
	// silico average-rank orders; the paper's corroboration finding is that
	// it is positive but below 1 (discrepancies exist).
	RankCorrelation float64
}

// RunExperiment executes the complete autoscaling study on a workflow-heavy
// scientific workload.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	tr := workload.StandardGenerator(workload.ClassScientific).Generate(cfg.Jobs, r)

	res := &ExperimentResult{
		Vitro:       make(map[string]ElasticityMetrics),
		Silico:      make(map[string]ElasticityMetrics),
		CostByModel: make(map[string]map[string]float64),
	}
	for _, as := range DefaultAutoscalers() {
		vs, err := Run(DefaultVitroConfig(), as, tr)
		if err != nil {
			return nil, fmt.Errorf("autoscale: vitro %s: %w", as.Name(), err)
		}
		res.Vitro[as.Name()] = ComputeMetrics(vs)

		ss, err := Run(DefaultSilicoConfig(), as, tr)
		if err != nil {
			return nil, fmt.Errorf("autoscale: silico %s: %w", as.Name(), err)
		}
		res.Silico[as.Name()] = ComputeMetrics(ss)
	}

	res.AvgRankVitro = AverageRank(res.Vitro)
	res.HeadToHead = HeadToHead(res.Vitro)
	res.GradesVitro = Grade(res.Vitro)

	for _, cm := range StandardCostModels() {
		costs := make(map[string]float64, len(res.Vitro))
		for name, m := range res.Vitro {
			costs[name] = cm.Cost(m.CoreSeconds)
		}
		res.CostByModel[cm.Name] = costs
	}

	res.RankCorrelation = rankCorrelation(res.Vitro, res.Silico)
	return res, nil
}

// rankCorrelation computes the Spearman correlation between the average
// ranks of the two engines.
func rankCorrelation(a, b map[string]ElasticityMetrics) float64 {
	ra := AverageRank(a)
	rb := AverageRank(b)
	names := make([]string, 0, len(ra))
	for n := range ra {
		if _, ok := rb[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	xs := make([]float64, len(names))
	ys := make([]float64, len(names))
	for i, n := range names {
		xs[i] = ra[n]
		ys[i] = rb[n]
	}
	return stats.Spearman(xs, ys)
}
