package autoscale

import (
	"math"
	"sort"

	"atlarge/internal/stats"
)

// ElasticityMetrics are the ten §6.7 evaluation metrics: the Herbst-style
// elasticity set (accuracy and timeshare of over/under-provisioning,
// instability, jitter), traditional performance metrics (response time,
// slowdown), and the operational metrics (core-seconds, deadline-miss rate).
// For every metric, lower is better.
type ElasticityMetrics struct {
	AccuracyUnder   float64 // mean under-provisioned cores (normalized by peak demand)
	AccuracyOver    float64 // mean over-provisioned cores (normalized by peak demand)
	TimeshareUnder  float64 // fraction of time under-provisioned
	TimeshareOver   float64 // fraction of time over-provisioned
	Instability     float64 // fraction of steps where supply changes direction
	Jitter          float64 // |supply changes − demand changes| per step
	MeanResponse    float64 // mean job response time (s)
	MeanSlowdown    float64 // mean bounded job slowdown
	CoreSeconds     float64 // provisioned capacity integral
	DeadlineMissPct float64 // % of jobs missing their deadline
}

// MetricNames lists the metric keys in canonical order.
func MetricNames() []string {
	return []string{
		"accuracy_under", "accuracy_over", "timeshare_under", "timeshare_over",
		"instability", "jitter", "mean_response", "mean_slowdown",
		"core_seconds", "deadline_miss_pct",
	}
}

// AsMap returns the metrics keyed by MetricNames order.
func (m ElasticityMetrics) AsMap() map[string]float64 {
	return map[string]float64{
		"accuracy_under":    m.AccuracyUnder,
		"accuracy_over":     m.AccuracyOver,
		"timeshare_under":   m.TimeshareUnder,
		"timeshare_over":    m.TimeshareOver,
		"instability":       m.Instability,
		"jitter":            m.Jitter,
		"mean_response":     m.MeanResponse,
		"mean_slowdown":     m.MeanSlowdown,
		"core_seconds":      m.CoreSeconds,
		"deadline_miss_pct": m.DeadlineMissPct,
	}
}

// ComputeMetrics derives the ten metrics from a run.
func ComputeMetrics(st *RunStats) ElasticityMetrics {
	var m ElasticityMetrics
	n := len(st.Supply)
	if n == 0 {
		return m
	}
	peak := 0
	for _, d := range st.Demand {
		if d > peak {
			peak = d
		}
	}
	if peak == 0 {
		peak = 1
	}
	var under, over float64
	var tUnder, tOver int
	for i := 0; i < n; i++ {
		gap := st.Demand[i] - st.Supply[i]
		if gap > 0 {
			under += float64(gap)
			tUnder++
		} else if gap < 0 {
			over += float64(-gap)
			tOver++
		}
	}
	m.AccuracyUnder = under / float64(n) / float64(peak)
	m.AccuracyOver = over / float64(n) / float64(peak)
	m.TimeshareUnder = float64(tUnder) / float64(n)
	m.TimeshareOver = float64(tOver) / float64(n)
	m.Instability = instability(st.Supply)
	m.Jitter = math.Abs(changes(st.Supply)-changes(st.Demand)) / float64(n)
	m.MeanResponse = stats.Mean(st.JobResponse)
	m.MeanSlowdown = stats.Mean(st.JobSlowdown)
	m.CoreSeconds = st.CoreSeconds
	if st.JobsDone > 0 {
		m.DeadlineMissPct = 100 * float64(st.DeadlineMiss) / float64(st.JobsDone)
	}
	return m
}

// instability is the fraction of interior points where the supply slope
// changes sign.
func instability(xs []int) float64 {
	if len(xs) < 3 {
		return 0
	}
	flips := 0
	prev := 0
	for i := 1; i < len(xs); i++ {
		d := sign(xs[i] - xs[i-1])
		if d != 0 && prev != 0 && d != prev {
			flips++
		}
		if d != 0 {
			prev = d
		}
	}
	return float64(flips) / float64(len(xs)-2)
}

// changes counts direction-ful steps in the series.
func changes(xs []int) float64 {
	c := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[i-1] {
			c++
		}
	}
	return float64(c)
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// CostModel converts provisioned capacity into money, following the §6.7
// cost analysis with several real-world-shaped billing schemes.
type CostModel struct {
	Name string
	// PricePerCoreHour in dollars.
	PricePerCoreHour float64
	// Granularity rounds each VM's total usage up to a multiple (seconds).
	// The engines track aggregate core-seconds, so granularity is applied to
	// the aggregate as an approximation.
	Granularity float64
}

// StandardCostModels returns the per-hour, per-minute, and per-second
// billing models used in the cost analysis.
func StandardCostModels() []CostModel {
	return []CostModel{
		{Name: "per-hour", PricePerCoreHour: 0.10, Granularity: 3600},
		{Name: "per-minute", PricePerCoreHour: 0.105, Granularity: 60},
		{Name: "per-second", PricePerCoreHour: 0.11, Granularity: 1},
	}
}

// Cost returns the charged cost of coreSeconds of provisioned capacity.
func (c CostModel) Cost(coreSeconds float64) float64 {
	s := coreSeconds
	if c.Granularity > 1 {
		units := math.Ceil(s / c.Granularity)
		s = units * c.Granularity
	}
	return s / 3600 * c.PricePerCoreHour
}

// RankByMetric returns, for one metric (lower is better), the autoscaler
// names in rank order.
func RankByMetric(results map[string]ElasticityMetrics, metric string) []string {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.SliceStable(names, func(i, j int) bool {
		a := results[names[i]].AsMap()[metric]
		b := results[names[j]].AsMap()[metric]
		if a != b {
			return a < b
		}
		return names[i] < names[j]
	})
	return names
}

// AverageRank is ranking method 1 of the paper: rank per metric (ties share
// the mean rank), then average the ranks over all metrics. Lower is better.
func AverageRank(results map[string]ElasticityMetrics) map[string]float64 {
	sum := make(map[string]float64, len(results))
	for _, metric := range MetricNames() {
		order := RankByMetric(results, metric)
		// Assign average ranks to runs of equal metric values.
		for i := 0; i < len(order); {
			j := i
			vi := results[order[i]].AsMap()[metric]
			for j+1 < len(order) && results[order[j+1]].AsMap()[metric] == vi {
				j++
			}
			avg := float64(i+j)/2 + 1
			for k := i; k <= j; k++ {
				sum[order[k]] += avg
			}
			i = j + 1
		}
	}
	out := make(map[string]float64, len(results))
	for name, s := range sum {
		out[name] = s / float64(len(MetricNames()))
	}
	return out
}

// HeadToHead is ranking method 2: pairwise tournaments. wins[a][b] counts
// the metrics on which a strictly beats b.
func HeadToHead(results map[string]ElasticityMetrics) map[string]map[string]int {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	wins := make(map[string]map[string]int, len(names))
	for _, a := range names {
		wins[a] = make(map[string]int, len(names)-1)
		for _, b := range names {
			if a == b {
				continue
			}
			am, bm := results[a].AsMap(), results[b].AsMap()
			for _, metric := range MetricNames() {
				if am[metric] < bm[metric] {
					wins[a][b]++
				}
			}
		}
	}
	return wins
}

// Grade is the paper's grading method: combine the per-metric scores
// judiciously into one grade per autoscaler. Each metric is normalized to
// the best observed value and the grade is the geometric mean of the
// normalized scores (1.0 is a perfect sweep; higher is worse).
func Grade(results map[string]ElasticityMetrics) map[string]float64 {
	metrics := MetricNames()
	best := make(map[string]float64, len(metrics))
	for _, metric := range metrics {
		b := math.Inf(1)
		for _, m := range results {
			if v := m.AsMap()[metric]; v < b {
				b = v
			}
		}
		best[metric] = b
	}
	out := make(map[string]float64, len(results))
	for name, m := range results {
		logSum := 0.0
		count := 0
		am := m.AsMap()
		for _, metric := range metrics {
			b := best[metric]
			v := am[metric]
			// Shift scale-free metrics away from zero so ratios stay finite.
			const eps = 1e-6
			ratio := (v + eps) / (b + eps)
			logSum += math.Log(ratio)
			count++
		}
		out[name] = math.Exp(logSum / float64(count))
	}
	return out
}
