package autoscale

import (
	"math/rand"
	"testing"

	"atlarge/internal/workload"
)

// failTrace returns a moderate workflow workload.
func failTrace(t *testing.T, seed int64) *workload.Trace {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	return workload.StandardGenerator(workload.ClassScientific).Generate(12, r)
}

func TestBootFailuresStillComplete(t *testing.T) {
	tr := failTrace(t, 4)
	cfg := DefaultVitroConfig()
	cfg.BootFailureRate = 0.3
	cfg.Seed = 4
	st, err := Run(cfg, React{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsDone != 12 {
		t.Errorf("jobs done under boot failures = %d/12", st.JobsDone)
	}
}

func TestBootFailuresDegradeResponse(t *testing.T) {
	tr := failTrace(t, 4)
	clean := DefaultVitroConfig()
	clean.Seed = 4
	stClean, err := Run(clean, React{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	faulty := DefaultVitroConfig()
	faulty.Seed = 4
	faulty.BootFailureRate = 0.5
	stFaulty, err := Run(faulty, React{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	mClean := ComputeMetrics(stClean)
	mFaulty := ComputeMetrics(stFaulty)
	if mFaulty.MeanResponse <= mClean.MeanResponse {
		t.Errorf("boot failures did not degrade response: %v vs %v",
			mFaulty.MeanResponse, mClean.MeanResponse)
	}
	// Under-provisioning accuracy must worsen too.
	if mFaulty.AccuracyUnder < mClean.AccuracyUnder {
		t.Errorf("boot failures reduced under-provisioning: %v vs %v",
			mFaulty.AccuracyUnder, mClean.AccuracyUnder)
	}
}

func TestBootFailureDeterministicPerSeed(t *testing.T) {
	tr := failTrace(t, 4)
	cfg := DefaultVitroConfig()
	cfg.BootFailureRate = 0.4
	cfg.Seed = 11
	a, err := Run(cfg, Adapt{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, Adapt{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.CoreSeconds != b.CoreSeconds || a.Horizon != b.Horizon {
		t.Error("boot-failure runs not deterministic for fixed seed")
	}
}
