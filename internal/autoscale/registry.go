package autoscale

import (
	"fmt"
	"sort"
	"strings"
)

// ByName resolves an autoscaler case-insensitively from the §6.7 catalog, so
// declarative layers (the scenario engine, CLIs) can name policies the same
// way they name scheduling policies and workload classes.
func ByName(name string) (Autoscaler, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	for _, as := range DefaultAutoscalers() {
		if strings.ToLower(as.Name()) == key {
			return as, nil
		}
	}
	return nil, fmt.Errorf("autoscale: unknown autoscaler %q (known: %s)",
		name, strings.Join(Names(), ", "))
}

// Names returns the canonical autoscaler names, sorted.
func Names() []string {
	out := make([]string, 0, len(DefaultAutoscalers()))
	for _, as := range DefaultAutoscalers() {
		out = append(out, as.Name())
	}
	sort.Strings(out)
	return out
}

// KindByName resolves an engine kind case-insensitively, accepting the
// canonical "in-vitro"/"in-silico" and the bare "vitro"/"silico" aliases.
func KindByName(name string) (EngineKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "in-vitro", "vitro":
		return InVitro, nil
	case "in-silico", "silico":
		return InSilico, nil
	default:
		return 0, fmt.Errorf("autoscale: unknown engine %q (known: in-vitro, in-silico)", name)
	}
}

// KindNames returns the canonical engine-kind names.
func KindNames() []string { return []string{InVitro.String(), InSilico.String()} }
