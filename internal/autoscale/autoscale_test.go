package autoscale

import (
	"math"
	"math/rand"
	"testing"

	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

func TestReactTargetsDemand(t *testing.T) {
	obs := Observation{Demand: 17, Supply: 3}
	if got := (React{}).Target(obs); got != 17 {
		t.Errorf("React target = %d, want 17", got)
	}
}

func TestAdaptMovesGradually(t *testing.T) {
	a := Adapt{StepFraction: 0.5}
	up := a.Target(Observation{Demand: 20, Supply: 10})
	if up != 15 {
		t.Errorf("Adapt up = %d, want 15", up)
	}
	down := a.Target(Observation{Demand: 0, Supply: 10})
	if down != 5 {
		t.Errorf("Adapt down = %d, want 5", down)
	}
	flat := a.Target(Observation{Demand: 10, Supply: 10})
	if flat != 10 {
		t.Errorf("Adapt flat = %d, want 10", flat)
	}
	if got := a.Target(Observation{Demand: 0, Supply: 0}); got != 0 {
		t.Errorf("Adapt zero = %d", got)
	}
}

func TestHistUsesPercentile(t *testing.T) {
	h := Hist{Window: 10, Pct: 95}
	hist := []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 20}
	got := h.Target(Observation{Demand: 5, History: hist})
	if got < 10 {
		t.Errorf("Hist target = %d, want >= 10 (95th pct of spiky history)", got)
	}
	// Without history, falls back to demand.
	if got := h.Target(Observation{Demand: 7}); got != 7 {
		t.Errorf("Hist fallback = %d, want 7", got)
	}
}

func TestRegExtrapolatesTrend(t *testing.T) {
	g := Reg{Window: 10}
	hist := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18} // slope 2 per eval
	got := g.Target(Observation{Demand: 18, History: hist, BootDelay: 60, EvalInterval: 30})
	// Prediction 2 eval-steps ahead: 18 + 2*2 = 22.
	if got < 20 {
		t.Errorf("Reg target = %d, want >= 20 (trend extrapolation)", got)
	}
	if got := g.Target(Observation{Demand: 9, History: []int{1, 2}}); got != 9 {
		t.Errorf("Reg short-history fallback = %d, want 9", got)
	}
}

func TestConPaaSWeightedAverage(t *testing.T) {
	c := ConPaaS{}
	got := c.Target(Observation{Demand: 10, History: []int{10, 10, 10, 10}})
	if got != 10 {
		t.Errorf("ConPaaS steady = %d, want 10", got)
	}
	rising := c.Target(Observation{Demand: 20, History: []int{5, 10, 15, 20}})
	if rising <= 15 {
		t.Errorf("ConPaaS rising = %d, want > 15", rising)
	}
	if got := c.Target(Observation{Demand: 4, History: []int{4}}); got != 4 {
		t.Errorf("ConPaaS single-point fallback = %d", got)
	}
}

func TestPlanAndTokenUseWorkflowInfo(t *testing.T) {
	obs := Observation{Demand: 10, SoonEligible: 8}
	if got := (Plan{}).Target(obs); got != 18 {
		t.Errorf("Plan = %d, want 18", got)
	}
	if got := (Token{}).Target(obs); got != 14 {
		t.Errorf("Token = %d, want 14 (damped)", got)
	}
	if !(Plan{}).WorkflowAware() || !(Token{}).WorkflowAware() {
		t.Error("Plan/Token must be workflow-aware")
	}
	if (React{}).WorkflowAware() {
		t.Error("React must not be workflow-aware")
	}
}

func smallTrace(t *testing.T, n int, seed int64) *workload.Trace {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	return workload.StandardGenerator(workload.ClassScientific).Generate(n, r)
}

func TestVitroEngineCompletesAllJobs(t *testing.T) {
	tr := smallTrace(t, 10, 1)
	st, err := Run(DefaultVitroConfig(), React{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsDone != 10 {
		t.Errorf("JobsDone = %d, want 10", st.JobsDone)
	}
	if len(st.Supply) == 0 || len(st.Supply) != len(st.Demand) {
		t.Errorf("series lengths %d/%d", len(st.Supply), len(st.Demand))
	}
	if st.CoreSeconds <= 0 {
		t.Errorf("CoreSeconds = %v", st.CoreSeconds)
	}
}

func TestSilicoEngineCompletesAllJobs(t *testing.T) {
	tr := smallTrace(t, 10, 1)
	st, err := Run(DefaultSilicoConfig(), React{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsDone != 10 {
		t.Errorf("JobsDone = %d, want 10", st.JobsDone)
	}
}

func TestAllAutoscalersCompleteBothEngines(t *testing.T) {
	tr := smallTrace(t, 8, 2)
	for _, as := range DefaultAutoscalers() {
		for _, cfg := range []EngineConfig{DefaultVitroConfig(), DefaultSilicoConfig()} {
			st, err := Run(cfg, as, tr)
			if err != nil {
				t.Fatalf("%s/%s: %v", as.Name(), cfg.Kind, err)
			}
			if st.JobsDone != 8 {
				t.Errorf("%s/%s completed %d/8 jobs", as.Name(), cfg.Kind, st.JobsDone)
			}
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	tr := smallTrace(t, 2, 1)
	if _, err := Run(EngineConfig{Kind: InVitro}, React{}, tr); err == nil {
		t.Error("zero-step config accepted")
	}
	cfg := DefaultVitroConfig()
	cfg.Kind = EngineKind(99)
	if _, err := Run(cfg, React{}, tr); err == nil {
		t.Error("unknown engine kind accepted")
	}
}

func TestVitroRejectsCyclicTrace(t *testing.T) {
	tr := &workload.Trace{Jobs: []*workload.Job{{
		ID:    1,
		Tasks: []workload.Task{{ID: 1, Deps: []int{1}, CPUs: 1, Runtime: 1}},
	}}}
	if _, err := Run(DefaultVitroConfig(), React{}, tr); err == nil {
		t.Error("cyclic trace accepted")
	}
}

func TestComputeMetricsBasics(t *testing.T) {
	st := &RunStats{
		Supply:      []int{0, 5, 10, 10, 5},
		Demand:      []int{10, 10, 10, 5, 5},
		Times:       []float64{0, 1, 2, 3, 4},
		JobResponse: []float64{100, 200},
		JobSlowdown: []float64{2, 4},
		JobsDone:    2,
		CoreSeconds: 30,
	}
	m := ComputeMetrics(st)
	if m.TimeshareUnder != 0.4 { // steps 0,1 under
		t.Errorf("TimeshareUnder = %v, want 0.4", m.TimeshareUnder)
	}
	if m.TimeshareOver != 0.2 { // step 3 over
		t.Errorf("TimeshareOver = %v, want 0.2", m.TimeshareOver)
	}
	// Under: (10 + 5) / 5 steps / peak 10 = 0.3.
	if math.Abs(m.AccuracyUnder-0.3) > 1e-12 {
		t.Errorf("AccuracyUnder = %v, want 0.3", m.AccuracyUnder)
	}
	if m.MeanResponse != 150 || m.MeanSlowdown != 3 {
		t.Errorf("perf metrics = %v/%v", m.MeanResponse, m.MeanSlowdown)
	}
	if m.CoreSeconds != 30 {
		t.Errorf("CoreSeconds = %v", m.CoreSeconds)
	}
}

func TestComputeMetricsEmpty(t *testing.T) {
	m := ComputeMetrics(&RunStats{})
	if m.AccuracyUnder != 0 || m.MeanResponse != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
}

func TestInstabilityDetectsOscillation(t *testing.T) {
	osc := instability([]int{0, 5, 0, 5, 0, 5})
	steady := instability([]int{0, 1, 2, 3, 4, 5})
	if osc <= steady {
		t.Errorf("instability(oscillating)=%v <= instability(monotone)=%v", osc, steady)
	}
	if instability([]int{1, 2}) != 0 {
		t.Error("short series instability should be 0")
	}
}

func TestCostModels(t *testing.T) {
	perHour := CostModel{Name: "h", PricePerCoreHour: 1, Granularity: 3600}
	// 1 core-second -> rounded to 1 hour -> $1.
	if got := perHour.Cost(1); got != 1 {
		t.Errorf("per-hour cost = %v, want 1", got)
	}
	perSec := CostModel{Name: "s", PricePerCoreHour: 1, Granularity: 1}
	if got := perSec.Cost(1800); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("per-second cost = %v, want 0.5", got)
	}
	models := StandardCostModels()
	if len(models) != 3 {
		t.Fatalf("models = %d", len(models))
	}
	// Finer granularity with slightly higher rate is cheaper for tiny usage.
	if models[2].Cost(10) >= models[0].Cost(10) {
		t.Error("per-second billing should beat per-hour for 10s usage")
	}
}

func TestRankingsAndGrades(t *testing.T) {
	results := map[string]ElasticityMetrics{
		"good": {AccuracyUnder: 0.1, AccuracyOver: 0.1, MeanResponse: 10, MeanSlowdown: 1, CoreSeconds: 100},
		"bad":  {AccuracyUnder: 0.9, AccuracyOver: 0.9, MeanResponse: 100, MeanSlowdown: 9, CoreSeconds: 1000},
	}
	order := RankByMetric(results, "mean_response")
	if order[0] != "good" {
		t.Errorf("rank order = %v", order)
	}
	avg := AverageRank(results)
	if avg["good"] >= avg["bad"] {
		t.Errorf("avg ranks: good=%v bad=%v", avg["good"], avg["bad"])
	}
	h2h := HeadToHead(results)
	if h2h["good"]["bad"] <= h2h["bad"]["good"] {
		t.Errorf("head-to-head: %v", h2h)
	}
	grades := Grade(results)
	if grades["good"] >= grades["bad"] {
		t.Errorf("grades: %v", grades)
	}
	if math.Abs(grades["good"]-1) > 1e-6 {
		t.Errorf("dominant autoscaler grade = %v, want 1.0", grades["good"])
	}
}

func TestWorkflowAwareBeatsReactiveOnWait(t *testing.T) {
	// On a workflow-heavy workload, Plan should respond no worse than React:
	// it pre-provisions for soon-eligible tasks, so mean response should not
	// be dramatically worse, and typically better.
	tr := smallTrace(t, 20, 7)
	planStats, err := Run(DefaultVitroConfig(), Plan{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	reactStats, err := Run(DefaultVitroConfig(), React{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	pm, rm := ComputeMetrics(planStats), ComputeMetrics(reactStats)
	if pm.MeanResponse > rm.MeanResponse*1.25 {
		t.Errorf("Plan mean response %v much worse than React %v", pm.MeanResponse, rm.MeanResponse)
	}
}

func TestRunExperimentCorroboration(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment is slow")
	}
	res, err := RunExperiment(ExperimentConfig{Jobs: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vitro) != 7 || len(res.Silico) != 7 {
		t.Fatalf("engines covered %d/%d autoscalers", len(res.Vitro), len(res.Silico))
	}
	// The paper's finding: rankings corroborate (positive correlation) but
	// are not identical (discrepancies exist). We assert the positive part;
	// identity would only be suspicious, not wrong.
	if math.IsNaN(res.RankCorrelation) {
		t.Fatal("rank correlation is NaN")
	}
	if res.RankCorrelation <= 0 {
		t.Errorf("vitro/silico rank correlation = %v, want positive", res.RankCorrelation)
	}
	if len(res.CostByModel) != 3 {
		t.Errorf("cost models = %d, want 3", len(res.CostByModel))
	}
	for model, costs := range res.CostByModel {
		for name, c := range costs {
			if c <= 0 {
				t.Errorf("cost %s/%s = %v, want > 0", model, name, c)
			}
		}
	}
}

func TestEngineKindString(t *testing.T) {
	if InVitro.String() != "in-vitro" || InSilico.String() != "in-silico" {
		t.Error("EngineKind strings wrong")
	}
}

func TestDeadlineMissesCounted(t *testing.T) {
	// One job with an impossible deadline.
	tr := &workload.Trace{Jobs: []*workload.Job{{
		ID:       1,
		Submit:   0,
		Deadline: 1,
		Tasks:    []workload.Task{{ID: 1, CPUs: 1, Runtime: sim.Duration(500), RuntimeEstimate: 500}},
	}}}
	st, err := Run(DefaultVitroConfig(), React{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadlineMiss != 1 {
		t.Errorf("DeadlineMiss = %d, want 1", st.DeadlineMiss)
	}
	m := ComputeMetrics(st)
	if m.DeadlineMissPct != 100 {
		t.Errorf("DeadlineMissPct = %v, want 100", m.DeadlineMissPct)
	}
}
