package autoscale

import (
	"math"
	"math/rand"
	"testing"

	"atlarge/internal/workload"
)

// relDiff is |a-b| / max(|a|,|b|, floor).
func relDiff(a, b, floor float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), floor)
	return math.Abs(a-b) / den
}

// parityTrace reproduces the examples/autoscaling workload shape: a
// workflow-heavy scientific trace.
func parityTrace(jobs int, seed int64) *workload.Trace {
	r := rand.New(rand.NewSource(seed))
	return workload.StandardGenerator(workload.ClassScientific).Generate(jobs, r)
}

// TestEventEngineParityVitro proves the event-driven in-vitro engine
// reproduces the historical step-driven loop's RunStats within tolerance:
// the event engine fires arrivals, boots, and task completions at exact
// instants where the step loop quantized them to Step boundaries, so job
// counts must match exactly and the continuous metrics must agree closely.
func TestEventEngineParityVitro(t *testing.T) {
	for _, seed := range []int64{7, 21} {
		tr := parityTrace(25, seed)
		for _, as := range DefaultAutoscalers() {
			ev, err := Run(DefaultVitroConfig(), as, tr)
			if err != nil {
				t.Fatalf("seed %d %s event: %v", seed, as.Name(), err)
			}
			st, err := runVitroStep(DefaultVitroConfig(), as, tr)
			if err != nil {
				t.Fatalf("seed %d %s step: %v", seed, as.Name(), err)
			}
			compareRunStats(t, seed, as.Name(), ev, st, 0.15)
		}
	}
}

// TestEventEngineParitySilico does the same for the coarse fluid engine,
// whose event form schedules exact zero-crossings of each job's remaining
// work instead of draining it in 30-second slices.
func TestEventEngineParitySilico(t *testing.T) {
	for _, seed := range []int64{7, 21} {
		tr := parityTrace(25, seed)
		for _, as := range DefaultAutoscalers() {
			ev, err := Run(DefaultSilicoConfig(), as, tr)
			if err != nil {
				t.Fatalf("seed %d %s event: %v", seed, as.Name(), err)
			}
			st, err := runSilicoStep(DefaultSilicoConfig(), as, tr)
			if err != nil {
				t.Fatalf("seed %d %s step: %v", seed, as.Name(), err)
			}
			compareRunStats(t, seed, as.Name(), ev, st, 0.15)
		}
	}
}

// compareRunStats checks exact job accounting and tolerance agreement of the
// headline per-run statistics and derived elasticity metrics.
func compareRunStats(t *testing.T, seed int64, name string, ev, st *RunStats, tol float64) {
	t.Helper()
	if ev.JobsDone != st.JobsDone {
		t.Errorf("seed %d %s: JobsDone %d (event) vs %d (step)", seed, name, ev.JobsDone, st.JobsDone)
	}
	if len(ev.JobResponse) != len(st.JobResponse) {
		t.Errorf("seed %d %s: responses %d vs %d", seed, name, len(ev.JobResponse), len(st.JobResponse))
	}
	em, sm := ComputeMetrics(ev), ComputeMetrics(st)
	checks := []struct {
		metric   string
		a, b     float64
		abs      bool // compare absolutely (for [0,1] fractions) vs relatively
		maxDelta float64
	}{
		// Continuous magnitudes: relative agreement.
		{"mean_response", em.MeanResponse, sm.MeanResponse, false, tol},
		{"mean_slowdown", em.MeanSlowdown, sm.MeanSlowdown, false, tol},
		{"core_seconds", em.CoreSeconds, sm.CoreSeconds, false, tol},
		{"horizon", ev.Horizon, st.Horizon, false, tol},
		// Fractions of time: absolute agreement (they live in [0,1]).
		{"timeshare_under", em.TimeshareUnder, sm.TimeshareUnder, true, tol},
		{"timeshare_over", em.TimeshareOver, sm.TimeshareOver, true, tol},
		{"accuracy_under", em.AccuracyUnder, sm.AccuracyUnder, true, tol},
		{"accuracy_over", em.AccuracyOver, sm.AccuracyOver, true, tol},
	}
	for _, c := range checks {
		var d float64
		if c.abs {
			d = math.Abs(c.a - c.b)
		} else {
			d = relDiff(c.a, c.b, 10)
		}
		if d > c.maxDelta {
			t.Errorf("seed %d %s: %s diverges: %v (event) vs %v (step), delta %.3f > %.3f",
				seed, name, c.metric, c.a, c.b, d, c.maxDelta)
		}
	}
}

// TestEventEngineDeterministic pins that the event engines are bitwise
// deterministic for a fixed seed (the scenario layer depends on it for
// byte-identical parallel sweeps).
func TestEventEngineDeterministic(t *testing.T) {
	tr := parityTrace(12, 3)
	for _, cfg := range []EngineConfig{DefaultVitroConfig(), DefaultSilicoConfig()} {
		cfg.Seed = 9
		a, err := Run(cfg, Adapt{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg, Adapt{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if a.CoreSeconds != b.CoreSeconds || a.Horizon != b.Horizon || a.JobsDone != b.JobsDone {
			t.Errorf("%s: repeated runs differ", cfg.Kind)
		}
		am, bm := ComputeMetrics(a), ComputeMetrics(b)
		if am != bm {
			t.Errorf("%s: metrics differ across identical runs", cfg.Kind)
		}
	}
}
