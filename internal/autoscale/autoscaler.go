// Package autoscale reproduces the paper's autoscaling experiments (§6.7):
// an elasticity testbed that evaluates general and workflow-aware autoscalers
// on workflow-based cloud workloads, computes the Herbst-style elasticity
// metrics, applies real-world-shaped cost models and deadline SLAs, ranks
// autoscalers head-to-head, and corroborates an "in vitro" (fine-grained
// emulation) engine against an independent "in silico" (coarse simulation)
// engine.
package autoscale

import (
	"math"

	"atlarge/internal/stats"
)

// Observation is what an autoscaler sees at each evaluation point.
type Observation struct {
	Now float64
	// Demand is the number of cores wanted right now (running + queued).
	Demand int
	// Supply is the number of provisioned cores (booted or booting).
	Supply int
	// History holds past demand observations, oldest first.
	History []int
	// SoonEligible is the number of cores that workflow structure predicts
	// will be wanted within the provisioning delay (only workflow-aware
	// autoscalers may use it; the engine computes it from DAG state).
	SoonEligible int
	// BootDelay is the VM provisioning latency in virtual seconds.
	BootDelay float64
	// EvalInterval is the autoscaler invocation period in virtual seconds.
	EvalInterval float64
}

// Autoscaler decides the target number of cores.
type Autoscaler interface {
	// Name identifies the autoscaler in reports.
	Name() string
	// WorkflowAware reports whether the policy uses workflow structure.
	WorkflowAware() bool
	// Target returns the desired core count given the observation.
	Target(obs Observation) int
}

// clampMin returns v, at least lo.
func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// React scales supply to exactly the current demand (Chieu et al. style).
type React struct{}

// Name implements Autoscaler.
func (React) Name() string { return "React" }

// WorkflowAware implements Autoscaler.
func (React) WorkflowAware() bool { return false }

// Target implements Autoscaler.
func (React) Target(obs Observation) int { return clampMin(obs.Demand, 0) }

// Adapt changes supply gradually, limiting each step to a fraction of the
// gap, which dampens oscillation (Ali-Eldin et al. style).
type Adapt struct {
	// StepFraction in (0,1] limits per-decision change; default 0.5.
	StepFraction float64
}

// Name implements Autoscaler.
func (Adapt) Name() string { return "Adapt" }

// WorkflowAware implements Autoscaler.
func (Adapt) WorkflowAware() bool { return false }

// Target implements Autoscaler.
func (a Adapt) Target(obs Observation) int {
	frac := a.StepFraction
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	gap := obs.Demand - obs.Supply
	step := int(math.Ceil(math.Abs(float64(gap)) * frac))
	if gap > 0 {
		return obs.Supply + step
	}
	if gap < 0 {
		return clampMin(obs.Supply-step, 0)
	}
	return obs.Supply
}

// Hist provisions for a high percentile of recent demand (Urgaonkar et al.
// histogram style).
type Hist struct {
	// Window is the number of history points considered; default 60.
	Window int
	// Pct is the target percentile; default 95.
	Pct float64
}

// Name implements Autoscaler.
func (Hist) Name() string { return "Hist" }

// WorkflowAware implements Autoscaler.
func (Hist) WorkflowAware() bool { return false }

// Target implements Autoscaler.
func (h Hist) Target(obs Observation) int {
	w := h.Window
	if w <= 0 {
		w = 60
	}
	p := h.Pct
	if p <= 0 {
		p = 95
	}
	hist := obs.History
	if len(hist) > w {
		hist = hist[len(hist)-w:]
	}
	if len(hist) == 0 {
		return obs.Demand
	}
	xs := make([]float64, len(hist))
	for i, v := range hist {
		xs[i] = float64(v)
	}
	return clampMin(int(math.Ceil(stats.Percentile(xs, p))), 0)
}

// Reg predicts demand one boot-delay ahead with a linear fit over recent
// history (Iqbal et al. regression style).
type Reg struct {
	// Window is the number of history points fitted; default 30.
	Window int
}

// Name implements Autoscaler.
func (Reg) Name() string { return "Reg" }

// WorkflowAware implements Autoscaler.
func (Reg) WorkflowAware() bool { return false }

// Target implements Autoscaler.
func (g Reg) Target(obs Observation) int {
	w := g.Window
	if w <= 0 {
		w = 30
	}
	hist := obs.History
	if len(hist) > w {
		hist = hist[len(hist)-w:]
	}
	if len(hist) < 3 {
		return obs.Demand
	}
	xs := make([]float64, len(hist))
	ys := make([]float64, len(hist))
	for i, v := range hist {
		xs[i] = float64(i)
		ys[i] = float64(v)
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return obs.Demand
	}
	// Predict at the point one boot delay past the end of the window.
	steps := 1.0
	if obs.EvalInterval > 0 {
		steps = obs.BootDelay / obs.EvalInterval
	}
	pred := fit.Intercept + fit.Slope*(float64(len(hist)-1)+steps)
	return clampMin(int(math.Ceil(pred)), 0)
}

// ConPaaS predicts the next value with a trend-adjusted weighted moving
// average (ConPaaS autoscaler style).
type ConPaaS struct{}

// Name implements Autoscaler.
func (ConPaaS) Name() string { return "ConPaaS" }

// WorkflowAware implements Autoscaler.
func (ConPaaS) WorkflowAware() bool { return false }

// Target implements Autoscaler.
func (ConPaaS) Target(obs Observation) int {
	hist := obs.History
	if len(hist) < 2 {
		return obs.Demand
	}
	if len(hist) > 10 {
		hist = hist[len(hist)-10:]
	}
	// Weighted moving average, newer points heavier.
	var num, den float64
	for i, v := range hist {
		w := float64(i + 1)
		num += w * float64(v)
		den += w
	}
	wma := num / den
	trend := float64(hist[len(hist)-1]-hist[0]) / float64(len(hist)-1)
	return clampMin(int(math.Ceil(wma+trend)), 0)
}

// Plan is workflow-aware: it provisions for current demand plus the cores
// that workflow structure says become eligible within one boot delay
// (Ilyushkin et al. Plan autoscaler).
type Plan struct{}

// Name implements Autoscaler.
func (Plan) Name() string { return "Plan" }

// WorkflowAware implements Autoscaler.
func (Plan) WorkflowAware() bool { return true }

// Target implements Autoscaler.
func (Plan) Target(obs Observation) int {
	return clampMin(obs.Demand+obs.SoonEligible, 0)
}

// Token is workflow-aware: it estimates the level of parallelism of the next
// wave by propagating tokens one dependency level and provisions for a
// damped combination (Ilyushkin et al. Token autoscaler).
type Token struct{}

// Name implements Autoscaler.
func (Token) Name() string { return "Token" }

// WorkflowAware implements Autoscaler.
func (Token) WorkflowAware() bool { return true }

// Target implements Autoscaler.
func (Token) Target(obs Observation) int {
	// The token estimate discounts the soon-eligible wave because not all
	// tokens materialize within the horizon.
	return clampMin(obs.Demand+int(math.Ceil(float64(obs.SoonEligible)*0.5)), 0)
}

// DefaultAutoscalers returns the seven autoscalers of the §6.7 experiments.
func DefaultAutoscalers() []Autoscaler {
	return []Autoscaler{React{}, Adapt{}, Hist{}, Reg{}, ConPaaS{}, Plan{}, Token{}}
}
