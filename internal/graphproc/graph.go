// Package graphproc is the graph-processing substrate of the Graphalytics
// experiments (paper §6.5, Table 8). It provides CSR graphs, dataset
// generators with distinct topologies, the six Graphalytics algorithms (BFS,
// PageRank, WCC, CDLP, LCC, SSSP) instrumented with execution profiles, and
// several platform models whose costs depend differently on those profiles —
// which is exactly what gives rise to the PAD (Platform–Algorithm–Dataset)
// interaction law.
package graphproc

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
)

// Graph is a directed graph in CSR (compressed sparse row) form. Vertices
// are 0..N-1.
type Graph struct {
	Name    string
	N       int
	offsets []int32
	targets []int32
	// Weights parallel targets; nil for unweighted graphs.
	Weights []float32
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.targets) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the out-neighbors of v. The returned slice aliases the
// CSR storage and must not be mutated.
func (g *Graph) Neighbors(v int) []int32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// EdgeWeights returns the weights parallel to Neighbors(v), or nil.
func (g *Graph) EdgeWeights(v int) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.offsets[v]:g.offsets[v+1]]
}

// FromEdges builds a CSR graph from an edge list. Self-loops are kept;
// duplicate edges are kept (multigraph semantics, like Graphalytics inputs
// after dedup is skipped).
func FromEdges(name string, n int, edges [][2]int32, weights []float32) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graphproc: vertex count %d", n)
	}
	if weights != nil && len(weights) != len(edges) {
		return nil, fmt.Errorf("graphproc: %d weights for %d edges", len(weights), len(edges))
	}
	deg := make([]int32, n)
	for _, e := range edges {
		if e[0] < 0 || int(e[0]) >= n || e[1] < 0 || int(e[1]) >= n {
			return nil, fmt.Errorf("graphproc: edge (%d,%d) out of range [0,%d)", e[0], e[1], n)
		}
		deg[e[0]]++
	}
	g := &Graph{Name: name, N: n}
	g.offsets = make([]int32, n+1)
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	g.targets = make([]int32, len(edges))
	if weights != nil {
		g.Weights = make([]float32, len(edges))
	}
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for i, e := range edges {
		pos := cursor[e[0]]
		g.targets[pos] = e[1]
		if weights != nil {
			g.Weights[pos] = weights[i]
		}
		cursor[e[0]]++
	}
	// Sort adjacency lists for deterministic traversal order.
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		if g.Weights == nil {
			seg := g.targets[lo:hi]
			slices.Sort(seg)
			continue
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = i
		}
		tg := g.targets[lo:hi]
		wt := g.Weights[lo:hi]
		slices.SortStableFunc(idx, func(a, b int) int { return cmp.Compare(tg[a], tg[b]) })
		nt := make([]int32, len(idx))
		nw := make([]float32, len(idx))
		for i, j := range idx {
			nt[i] = tg[j]
			nw[i] = wt[j]
		}
		copy(tg, nt)
		copy(wt, nw)
	}
	return g, nil
}

// DatasetKind identifies a generator topology; the "D" of the PAD triangle.
type DatasetKind int

// Dataset kinds.
const (
	DatasetRMAT       DatasetKind = iota + 1 // power-law, low diameter (social)
	DatasetUniform                           // Erdős–Rényi, moderate diameter
	DatasetLattice                           // 2D grid, very high diameter (road-like)
	DatasetSmallWorld                        // ring + shortcuts (Watts–Strogatz-like)
)

// String implements fmt.Stringer.
func (k DatasetKind) String() string {
	switch k {
	case DatasetRMAT:
		return "rmat"
	case DatasetUniform:
		return "uniform"
	case DatasetLattice:
		return "lattice"
	case DatasetSmallWorld:
		return "smallworld"
	default:
		return fmt.Sprintf("Dataset(%d)", int(k))
	}
}

// Generate builds a dataset of roughly n vertices with the topology of kind.
// Weighted graphs carry uniform(1,10) weights for SSSP.
func Generate(kind DatasetKind, n int, seed int64, weighted bool) (*Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("graphproc: dataset size %d too small", n)
	}
	r := rand.New(rand.NewSource(seed))
	var edges [][2]int32
	switch kind {
	case DatasetRMAT:
		edges = rmatEdges(r, n, 8*n)
	case DatasetUniform:
		edges = uniformEdges(r, n, 8*n)
	case DatasetLattice:
		edges = latticeEdges(n)
		n = latticeSide(n) * latticeSide(n)
	case DatasetSmallWorld:
		edges = smallWorldEdges(r, n, 4, 0.05)
	default:
		return nil, fmt.Errorf("graphproc: unknown dataset kind %d", kind)
	}
	var weights []float32
	if weighted {
		weights = make([]float32, len(edges))
		for i := range weights {
			weights[i] = 1 + float32(r.Float64()*9)
		}
	}
	return FromEdges(kind.String(), n, edges, weights)
}

// rmatEdges samples edges with the R-MAT recursive partitioning
// (a=0.57,b=0.19,c=0.19,d=0.05), giving a power-law degree distribution.
func rmatEdges(r *rand.Rand, n, m int) [][2]int32 {
	bits := 0
	for (1 << bits) < n {
		bits++
	}
	size := 1 << bits
	edges := make([][2]int32, 0, m)
	for len(edges) < m {
		src, dst := 0, 0
		for b := 0; b < bits; b++ {
			u := r.Float64()
			switch {
			case u < 0.57: // a: top-left
			case u < 0.76: // b: top-right
				dst |= 1 << b
			case u < 0.95: // c: bottom-left
				src |= 1 << b
			default: // d: bottom-right
				src |= 1 << b
				dst |= 1 << b
			}
		}
		if src < n && dst < n {
			edges = append(edges, [2]int32{int32(src), int32(dst)})
		}
		_ = size
	}
	return edges
}

// uniformEdges samples m uniformly random edges.
func uniformEdges(r *rand.Rand, n, m int) [][2]int32 {
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(r.Intn(n)), int32(r.Intn(n))}
	}
	return edges
}

// latticeSide returns the grid side for ~n vertices.
func latticeSide(n int) int {
	side := 1
	for side*side < n {
		side++
	}
	return side
}

// latticeEdges builds a 4-connected 2D grid (both directions per link).
func latticeEdges(n int) [][2]int32 {
	side := latticeSide(n)
	var edges [][2]int32
	at := func(x, y int) int32 { return int32(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				edges = append(edges, [2]int32{at(x, y), at(x+1, y)}, [2]int32{at(x+1, y), at(x, y)})
			}
			if y+1 < side {
				edges = append(edges, [2]int32{at(x, y), at(x, y+1)}, [2]int32{at(x, y+1), at(x, y)})
			}
		}
	}
	return edges
}

// smallWorldEdges builds a ring lattice with k neighbors per side plus
// random shortcuts with probability beta per edge.
func smallWorldEdges(r *rand.Rand, n, k int, beta float64) [][2]int32 {
	var edges [][2]int32
	for v := 0; v < n; v++ {
		for d := 1; d <= k; d++ {
			u := (v + d) % n
			if r.Float64() < beta {
				u = r.Intn(n)
			}
			edges = append(edges, [2]int32{int32(v), int32(u)}, [2]int32{int32(u), int32(v)})
		}
	}
	return edges
}
