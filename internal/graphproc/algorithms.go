package graphproc

import (
	"fmt"
	"math"
)

// Profile records how an algorithm executed on a graph: the information a
// Granula-style fine-grained performance analyzer extracts, and the input to
// every platform cost model.
type Profile struct {
	Algorithm string
	Dataset   string
	// Iterations is the number of supersteps (BSP rounds).
	Iterations int
	// ActivePerIter is the number of active vertices per superstep.
	ActivePerIter []int64
	// EdgesPerIter is the number of edges scanned per superstep.
	EdgesPerIter []int64
	// ComputeUnits is extra per-vertex arithmetic beyond edge scans
	// (e.g., LCC's triangle intersections).
	ComputeUnits float64
}

// TotalActive sums active vertices over supersteps.
func (p *Profile) TotalActive() int64 {
	var s int64
	for _, v := range p.ActivePerIter {
		s += v
	}
	return s
}

// TotalEdges sums scanned edges over supersteps.
func (p *Profile) TotalEdges() int64 {
	var s int64
	for _, v := range p.EdgesPerIter {
		s += v
	}
	return s
}

// Algorithm names; the "A" of the PAD triangle (the Graphalytics six).
const (
	AlgoBFS      = "BFS"
	AlgoPageRank = "PR"
	AlgoWCC      = "WCC"
	AlgoCDLP     = "CDLP"
	AlgoLCC      = "LCC"
	AlgoSSSP     = "SSSP"
)

// Algorithms lists the Graphalytics algorithm names in canonical order.
func Algorithms() []string {
	return []string{AlgoBFS, AlgoPageRank, AlgoWCC, AlgoCDLP, AlgoLCC, AlgoSSSP}
}

// RunAlgorithm executes the named algorithm and returns its result vector
// and execution profile. BFS/SSSP start from vertex 0.
func RunAlgorithm(name string, g *Graph) ([]float64, *Profile, error) {
	switch name {
	case AlgoBFS:
		return BFS(g, 0)
	case AlgoPageRank:
		return PageRank(g, 0.85, 20)
	case AlgoWCC:
		return WCC(g)
	case AlgoCDLP:
		return CDLP(g, 10)
	case AlgoLCC:
		return LCC(g)
	case AlgoSSSP:
		return SSSP(g, 0)
	default:
		return nil, nil, fmt.Errorf("graphproc: unknown algorithm %q", name)
	}
}

// BFS returns the hop distance from src (-1 encoded as +Inf for unreached).
func BFS(g *Graph, src int) ([]float64, *Profile, error) {
	if src < 0 || src >= g.N {
		return nil, nil, fmt.Errorf("graphproc: bfs source %d out of range", src)
	}
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	prof := &Profile{Algorithm: AlgoBFS, Dataset: g.Name}
	frontier := []int32{int32(src)}
	for level := 1; len(frontier) > 0; level++ {
		var edges int64
		var next []int32
		for _, v := range frontier {
			for _, u := range g.Neighbors(int(v)) {
				edges++
				if math.IsInf(dist[u], 1) {
					dist[u] = float64(level)
					next = append(next, u)
				}
			}
		}
		prof.Iterations++
		prof.ActivePerIter = append(prof.ActivePerIter, int64(len(frontier)))
		prof.EdgesPerIter = append(prof.EdgesPerIter, edges)
		frontier = next
	}
	return dist, prof, nil
}

// PageRank runs the classic damped power iteration for iters supersteps.
func PageRank(g *Graph, damping float64, iters int) ([]float64, *Profile, error) {
	if iters < 1 {
		return nil, nil, fmt.Errorf("graphproc: pagerank iterations %d", iters)
	}
	n := float64(g.N)
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range rank {
		rank[i] = 1 / n
	}
	prof := &Profile{Algorithm: AlgoPageRank, Dataset: g.Name}
	for it := 0; it < iters; it++ {
		var edges int64
		base := (1 - damping) / n
		for i := range next {
			next[i] = base
		}
		dangling := 0.0
		for v := 0; v < g.N; v++ {
			nb := g.Neighbors(v)
			if len(nb) == 0 {
				dangling += rank[v]
				continue
			}
			share := damping * rank[v] / float64(len(nb))
			for _, u := range nb {
				next[u] += share
				edges++
			}
		}
		spread := damping * dangling / n
		for i := range next {
			next[i] += spread
		}
		rank, next = next, rank
		prof.Iterations++
		prof.ActivePerIter = append(prof.ActivePerIter, int64(g.N))
		prof.EdgesPerIter = append(prof.EdgesPerIter, edges)
	}
	return rank, prof, nil
}

// WCC computes weakly connected components by label propagation over the
// symmetrized neighborhood (out-edges only in this CSR; the generators emit
// both directions for undirected topologies).
func WCC(g *Graph) ([]float64, *Profile, error) {
	label := make([]float64, g.N)
	for i := range label {
		label[i] = float64(i)
	}
	prof := &Profile{Algorithm: AlgoWCC, Dataset: g.Name}
	active := make([]bool, g.N)
	nActive := int64(g.N)
	for i := range active {
		active[i] = true
	}
	for nActive > 0 {
		var edges int64
		nextActive := make([]bool, g.N)
		var nNext int64
		for v := 0; v < g.N; v++ {
			if !active[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				edges++
				if label[v] < label[u] {
					label[u] = label[v]
					if !nextActive[u] {
						nextActive[u] = true
						nNext++
					}
				} else if label[u] < label[v] {
					label[v] = label[u]
					if !nextActive[v] {
						nextActive[v] = true
						nNext++
					}
				}
			}
		}
		prof.Iterations++
		prof.ActivePerIter = append(prof.ActivePerIter, nActive)
		prof.EdgesPerIter = append(prof.EdgesPerIter, edges)
		active = nextActive
		nActive = nNext
	}
	return label, prof, nil
}

// CDLP is community detection by synchronous label propagation for iters
// rounds: each vertex adopts the most frequent label among its neighbors.
func CDLP(g *Graph, iters int) ([]float64, *Profile, error) {
	if iters < 1 {
		return nil, nil, fmt.Errorf("graphproc: cdlp iterations %d", iters)
	}
	label := make([]float64, g.N)
	for i := range label {
		label[i] = float64(i)
	}
	prof := &Profile{Algorithm: AlgoCDLP, Dataset: g.Name}
	next := make([]float64, g.N)
	for it := 0; it < iters; it++ {
		var edges int64
		for v := 0; v < g.N; v++ {
			nb := g.Neighbors(v)
			if len(nb) == 0 {
				next[v] = label[v]
				continue
			}
			counts := make(map[float64]int, len(nb))
			for _, u := range nb {
				counts[label[u]]++
				edges++
			}
			best, bestC := label[v], 0
			for l, c := range counts {
				if c > bestC || (c == bestC && l < best) {
					best, bestC = l, c
				}
			}
			next[v] = best
		}
		label, next = next, label
		prof.Iterations++
		prof.ActivePerIter = append(prof.ActivePerIter, int64(g.N))
		prof.EdgesPerIter = append(prof.EdgesPerIter, edges)
	}
	return label, prof, nil
}

// LCC computes the local clustering coefficient per vertex via sorted
// adjacency intersection; compute-heavy (the ComputeUnits term dominates).
func LCC(g *Graph) ([]float64, *Profile, error) {
	out := make([]float64, g.N)
	prof := &Profile{Algorithm: AlgoLCC, Dataset: g.Name, Iterations: 1}
	var edges int64
	var work float64
	for v := 0; v < g.N; v++ {
		nb := g.Neighbors(v)
		edges += int64(len(nb))
		d := len(nb)
		if d < 2 {
			continue
		}
		links := 0
		for _, u := range nb {
			// Intersect neighbor lists (both sorted).
			links += intersectCount(nb, g.Neighbors(int(u)))
			work += float64(d + g.Degree(int(u)))
		}
		out[v] = float64(links) / float64(d*(d-1))
	}
	prof.ActivePerIter = []int64{int64(g.N)}
	prof.EdgesPerIter = []int64{edges}
	prof.ComputeUnits = work
	return out, prof, nil
}

// intersectCount counts common elements of two sorted int32 slices.
func intersectCount(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// SSSP computes single-source shortest paths with iterative Bellman–Ford
// using an active frontier (weights default to 1 when the graph is
// unweighted).
func SSSP(g *Graph, src int) ([]float64, *Profile, error) {
	if src < 0 || src >= g.N {
		return nil, nil, fmt.Errorf("graphproc: sssp source %d out of range", src)
	}
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	prof := &Profile{Algorithm: AlgoSSSP, Dataset: g.Name}
	frontier := []int32{int32(src)}
	for len(frontier) > 0 && prof.Iterations < g.N {
		var edges int64
		inNext := make(map[int32]bool)
		var next []int32
		for _, v := range frontier {
			nb := g.Neighbors(int(v))
			wt := g.EdgeWeights(int(v))
			for i, u := range nb {
				edges++
				w := 1.0
				if wt != nil {
					w = float64(wt[i])
				}
				if d := dist[v] + w; d < dist[u] {
					dist[u] = d
					if !inNext[u] {
						inNext[u] = true
						next = append(next, u)
					}
				}
			}
		}
		prof.Iterations++
		prof.ActivePerIter = append(prof.ActivePerIter, int64(len(frontier)))
		prof.EdgesPerIter = append(prof.EdgesPerIter, edges)
		frontier = next
	}
	return dist, prof, nil
}
