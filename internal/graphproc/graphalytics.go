package graphproc

import (
	"fmt"
	"math"
	"sort"

	"atlarge/internal/stats"
)

// BenchmarkConfig scales a Graphalytics run.
type BenchmarkConfig struct {
	// VertexCount per generated dataset.
	VertexCount int
	Datasets    []DatasetKind
	Algorithms  []string
	Engines     []Engine
	Seed        int64
}

// DefaultBenchmarkConfig covers the full PAD cube at test scale.
func DefaultBenchmarkConfig() BenchmarkConfig {
	return BenchmarkConfig{
		VertexCount: 2000,
		Datasets:    []DatasetKind{DatasetRMAT, DatasetUniform, DatasetLattice, DatasetSmallWorld},
		Algorithms:  Algorithms(),
		Engines:     StandardEngines(),
		Seed:        1,
	}
}

// Cell is one (platform, algorithm, dataset) measurement.
type Cell struct {
	Engine    string
	Algorithm string
	Dataset   string
	RuntimeMS float64
	Profile   *Profile
}

// BenchmarkResult is a full Graphalytics sweep.
type BenchmarkResult struct {
	Cells []Cell
	// Graphs maps dataset name to (n, m).
	Graphs map[string][2]int
}

// RunBenchmark executes the full PAD sweep: every algorithm actually runs on
// every dataset (producing a verified result and an execution profile), and
// every engine prices the profile with its cost model.
func RunBenchmark(cfg BenchmarkConfig) (*BenchmarkResult, error) {
	res := &BenchmarkResult{Graphs: make(map[string][2]int)}
	for _, e := range cfg.Engines {
		if err := e.Validate(); err != nil {
			return nil, err
		}
	}
	for di, dk := range cfg.Datasets {
		g, err := Generate(dk, cfg.VertexCount, cfg.Seed+int64(di), true)
		if err != nil {
			return nil, fmt.Errorf("graphproc: generate %s: %w", dk, err)
		}
		res.Graphs[g.Name] = [2]int{g.N, g.M()}
		for _, algo := range cfg.Algorithms {
			_, prof, err := RunAlgorithm(algo, g)
			if err != nil {
				return nil, fmt.Errorf("graphproc: %s on %s: %w", algo, g.Name, err)
			}
			for _, e := range cfg.Engines {
				res.Cells = append(res.Cells, Cell{
					Engine:    e.Name,
					Algorithm: algo,
					Dataset:   g.Name,
					RuntimeMS: e.Runtime(prof, g.M()),
					Profile:   prof,
				})
			}
		}
	}
	return res, nil
}

// Table returns runtimes as engines × (algorithm,dataset) cells, with the
// row and column labels.
func (r *BenchmarkResult) Table() (rows []string, cols []string, cells [][]float64) {
	engineSet := map[string]int{}
	colSet := map[string]int{}
	for _, c := range r.Cells {
		if _, ok := engineSet[c.Engine]; !ok {
			engineSet[c.Engine] = len(engineSet)
			rows = append(rows, c.Engine)
		}
		key := c.Algorithm + "/" + c.Dataset
		if _, ok := colSet[key]; !ok {
			colSet[key] = len(colSet)
			cols = append(cols, key)
		}
	}
	cells = make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	for _, c := range r.Cells {
		cells[engineSet[c.Engine]][colSet[c.Algorithm+"/"+c.Dataset]] = c.RuntimeMS
	}
	return rows, cols, cells
}

// PADReport is the statistical verdict on the PAD law.
type PADReport struct {
	// DistinctWinners counts engines that win at least one workload column.
	DistinctWinners int
	// WinnerByColumn maps "algo/dataset" to the winning engine.
	WinnerByColumn map[string]string
	// InteractionFrac is the fraction of log-runtime variance attributable
	// to the platform × workload interaction (two-factor decomposition).
	InteractionFrac float64
	// PlatformFrac and WorkloadFrac are the main-effect fractions.
	PlatformFrac float64
	WorkloadFrac float64
}

// AnalyzePAD computes the PAD-law statistics from a sweep.
func AnalyzePAD(r *BenchmarkResult) (*PADReport, error) {
	rows, cols, cells := r.Table()
	if len(rows) < 2 || len(cols) < 2 {
		return nil, fmt.Errorf("graphproc: PAD analysis needs >= 2 engines and workloads")
	}
	logCells := make([][]float64, len(cells))
	for i, row := range cells {
		logCells[i] = make([]float64, len(row))
		for j, v := range row {
			if v <= 0 {
				v = 1e-9
			}
			logCells[i][j] = math.Log(v)
		}
	}
	dec, err := stats.DecomposeTwoFactor(logCells)
	if err != nil {
		return nil, err
	}
	nWin, winners := stats.WinnerChanges(cells)
	rep := &PADReport{
		DistinctWinners: nWin,
		WinnerByColumn:  make(map[string]string, len(cols)),
		InteractionFrac: dec.FracInteraction,
		PlatformFrac:    dec.FracA,
		WorkloadFrac:    dec.FracB,
	}
	for j, col := range cols {
		rep.WinnerByColumn[col] = rows[winners[j]]
	}
	return rep, nil
}

// HPADReport extends the PAD analysis with the heterogeneous-hardware
// dimension (Table 8, Uta et al. '18): comparing the winner sets with and
// without the H platforms.
type HPADReport struct {
	WinnersWithoutH int
	WinnersWithH    int
	// HWinsColumns counts workload columns won by a heterogeneous platform.
	HWinsColumns int
}

// AnalyzeHPAD computes the HPAD comparison from a sweep that includes
// heterogeneous engines.
func AnalyzeHPAD(r *BenchmarkResult, engines []Engine) (*HPADReport, error) {
	hetero := map[string]bool{}
	for _, e := range engines {
		if e.Heterogeneous {
			hetero[e.Name] = true
		}
	}
	if len(hetero) == 0 {
		return nil, fmt.Errorf("graphproc: no heterogeneous engines in sweep")
	}
	rows, _, cells := r.Table()

	// Full winner analysis.
	nAll, winnersAll := stats.WinnerChanges(cells)

	// Without H rows.
	var subRows []string
	var subCells [][]float64
	for i, name := range rows {
		if !hetero[name] {
			subRows = append(subRows, name)
			subCells = append(subCells, cells[i])
		}
	}
	nSub, _ := stats.WinnerChanges(subCells)

	rep := &HPADReport{WinnersWithoutH: nSub, WinnersWithH: nAll}
	for _, w := range winnersAll {
		if hetero[rows[w]] {
			rep.HWinsColumns++
		}
	}
	return rep, nil
}

// GranulaBreakdown is the fine-grained phase analysis of one cell: how the
// modeled runtime divides across supersteps and cost components.
type GranulaBreakdown struct {
	Engine    string
	Algorithm string
	Dataset   string
	EdgeMS    float64
	ActiveMS  float64
	BarrierMS float64
	ComputeMS float64
	// PerStepMS is the per-superstep total, for the timeline view.
	PerStepMS []float64
}

// Breakdown computes the Granula-style decomposition of a cell.
func Breakdown(e Engine, p *Profile, m int) GranulaBreakdown {
	workers := float64(e.Workers)
	if workers < 1 {
		workers = 1
	}
	b := GranulaBreakdown{Engine: e.Name, Algorithm: p.Algorithm, Dataset: p.Dataset}
	for i := 0; i < p.Iterations; i++ {
		edges := float64(p.EdgesPerIter[i])
		if e.FullSweep {
			edges = float64(m)
		}
		em := edges * e.PerEdge / workers
		am := float64(p.ActivePerIter[i]) * e.PerActive / workers
		b.EdgeMS += em
		b.ActiveMS += am
		b.BarrierMS += e.PerStep
		b.PerStepMS = append(b.PerStepMS, em+am+e.PerStep)
	}
	b.ComputeMS = p.ComputeUnits * e.PerCompute / workers
	return b
}

// Total returns the breakdown's total milliseconds.
func (b GranulaBreakdown) Total() float64 {
	return b.EdgeMS + b.ActiveMS + b.BarrierMS + b.ComputeMS
}

// RankEngines orders engines by total runtime over the whole sweep,
// fastest first.
func (r *BenchmarkResult) RankEngines() []string {
	totals := map[string]float64{}
	for _, c := range r.Cells {
		totals[c.Engine] += c.RuntimeMS
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return totals[names[i]] < totals[names[j]] })
	return names
}
