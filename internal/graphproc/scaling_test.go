package graphproc

import "testing"

func parallelBase() Engine {
	return Engine{Name: "vertex-par", PerEdge: 1e-4, PerActive: 2e-4, PerStep: 0.8, PerCompute: 1e-4, Workers: 8}
}

func TestScalingCurveMonotone(t *testing.T) {
	g, err := Generate(DatasetRMAT, 1000, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	_, prof, err := PageRank(g, 0.85, 20)
	if err != nil {
		t.Fatal(err)
	}
	curve := ScalingCurve(parallelBase(), prof, g.M(), []int{1, 2, 4, 8, 16, 32})
	if len(curve) != 6 {
		t.Fatalf("points = %d", len(curve))
	}
	if curve[0].Speedup != 1 {
		t.Errorf("speedup at 1 worker = %v", curve[0].Speedup)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].RuntimeMS > curve[i-1].RuntimeMS+1e-9 {
			t.Errorf("runtime increased with workers: %v -> %v", curve[i-1], curve[i])
		}
		if curve[i].Speedup < curve[i-1].Speedup-1e-9 {
			t.Errorf("speedup decreased: %v -> %v", curve[i-1], curve[i])
		}
	}
	// Speedup is bounded by the worker count (no superlinearity in a cost
	// model with barriers).
	for _, pt := range curve {
		if pt.Speedup > float64(pt.Workers)+1e-9 {
			t.Errorf("superlinear speedup %v at %d workers", pt.Speedup, pt.Workers)
		}
	}
}

func TestDeepTraversalSaturatesEarlier(t *testing.T) {
	lattice, err := Generate(DatasetLattice, 2500, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	rmat, err := Generate(DatasetRMAT, 2500, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	_, latProf, err := BFS(lattice, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, prProf, err := PageRank(rmat, 0.85, 20)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	latCurve := ScalingCurve(parallelBase(), latProf, lattice.M(), counts)
	prCurve := ScalingCurve(parallelBase(), prProf, rmat.M(), counts)
	latSat := SaturationWorkers(latCurve, 0.05)
	prSat := SaturationWorkers(prCurve, 0.05)
	// Lattice BFS has ~100 supersteps with tiny frontiers: barrier-bound, it
	// must stop scaling before barrier-light PageRank on a low-diameter
	// graph.
	if latSat >= prSat {
		t.Errorf("lattice BFS saturates at %d workers, PageRank at %d; want earlier saturation for deep traversal",
			latSat, prSat)
	}
	// And its peak speedup must be lower.
	if latCurve[len(latCurve)-1].Speedup >= prCurve[len(prCurve)-1].Speedup {
		t.Errorf("deep traversal peak speedup %.1f not below full-sweep %.1f",
			latCurve[len(latCurve)-1].Speedup, prCurve[len(prCurve)-1].Speedup)
	}
}

func TestSaturationWorkersEdgeCases(t *testing.T) {
	if got := SaturationWorkers(nil, 0.05); got != 0 {
		t.Errorf("empty curve saturation = %d", got)
	}
	flat := []ScalingPoint{{Workers: 1, RuntimeMS: 100}, {Workers: 2, RuntimeMS: 99.9}}
	if got := SaturationWorkers(flat, 0.05); got != 1 {
		t.Errorf("flat curve saturation = %d, want 1", got)
	}
	steep := []ScalingPoint{{Workers: 1, RuntimeMS: 100}, {Workers: 2, RuntimeMS: 50}}
	if got := SaturationWorkers(steep, 0.05); got != 2 {
		t.Errorf("steep curve saturation = %d, want 2 (never flattens)", got)
	}
}
