package graphproc

// Strong-scaling analysis: the elasticity direction of the Graphalytics
// research line (Table 8, Uta et al. CLUSTER'18). For a BSP engine, edge and
// vertex work divide across workers but every superstep pays a barrier, so
// speedup saturates at a level set by the workload's superstep count —
// high-diameter traversals stop scaling far earlier than full-sweep
// algorithms.

// ScalingPoint is one point of a strong-scaling curve.
type ScalingPoint struct {
	Workers   int
	RuntimeMS float64
	Speedup   float64 // runtime(1 worker) / runtime(n workers)
}

// ScalingCurve prices the profiled run on a vertex-parallel engine at each
// worker count and returns the speedup curve. The base engine's coefficients
// are used; only Workers varies.
func ScalingCurve(base Engine, p *Profile, m int, workerCounts []int) []ScalingPoint {
	single := base
	single.Workers = 1
	t1 := single.Runtime(p, m)
	out := make([]ScalingPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		e := base
		e.Workers = w
		t := e.Runtime(p, m)
		sp := ScalingPoint{Workers: w, RuntimeMS: t}
		if t > 0 {
			sp.Speedup = t1 / t
		}
		out = append(out, sp)
	}
	return out
}

// SaturationWorkers returns the smallest worker count beyond which adding
// workers improves runtime by less than threshold (relative), i.e. where the
// curve flattens. It returns the largest measured count when the curve never
// flattens.
func SaturationWorkers(curve []ScalingPoint, threshold float64) int {
	for i := 1; i < len(curve); i++ {
		prev, cur := curve[i-1].RuntimeMS, curve[i].RuntimeMS
		if prev <= 0 {
			continue
		}
		if (prev-cur)/prev < threshold {
			return curve[i-1].Workers
		}
	}
	if len(curve) == 0 {
		return 0
	}
	return curve[len(curve)-1].Workers
}
