package graphproc

import (
	"math"
	"testing"
	"testing/quick"
)

// chainGraph builds 0 -> 1 -> 2 -> ... -> n-1.
func chainGraph(t *testing.T, n int) *Graph {
	t.Helper()
	edges := make([][2]int32, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	g, err := FromEdges("chain", n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges("x", 0, nil, nil); err == nil {
		t.Error("zero vertices accepted")
	}
	if _, err := FromEdges("x", 2, [][2]int32{{0, 5}}, nil); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges("x", 2, [][2]int32{{0, 1}}, []float32{1, 2}); err == nil {
		t.Error("weight length mismatch accepted")
	}
}

func TestCSRStructure(t *testing.T) {
	g, err := FromEdges("t", 3, [][2]int32{{0, 2}, {0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 {
		t.Errorf("M = %d", g.M())
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Errorf("Neighbors(0) = %v, want sorted [1 2]", nb)
	}
	if g.Degree(2) != 0 {
		t.Errorf("Degree(2) = %d", g.Degree(2))
	}
}

func TestBFSOnChain(t *testing.T) {
	g := chainGraph(t, 5)
	dist, prof, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if dist[i] != float64(i) {
			t.Errorf("dist[%d] = %v, want %d", i, dist[i], i)
		}
	}
	// One superstep per non-empty frontier: {0},{1},{2},{3},{4}.
	if prof.Iterations != 5 {
		t.Errorf("chain BFS iterations = %d, want 5", prof.Iterations)
	}
	if _, _, err := BFS(g, 99); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestBFSUnreachable(t *testing.T) {
	g, err := FromEdges("disc", 3, [][2]int32{{0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[2], 1) {
		t.Errorf("unreachable vertex dist = %v, want +Inf", dist[2])
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g, err := Generate(DatasetRMAT, 500, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	rank, prof, err := PageRank(g, 0.85, 20)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range rank {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("rank sum = %v, want 1", sum)
	}
	if prof.Iterations != 20 {
		t.Errorf("iterations = %d", prof.Iterations)
	}
	if _, _, err := PageRank(g, 0.85, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestWCCFindsComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4} (bidirectional edges).
	edges := [][2]int32{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {3, 4}, {4, 3}}
	g, err := FromEdges("cc", 5, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	label, _, err := WCC(g)
	if err != nil {
		t.Fatal(err)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Errorf("component 1 labels differ: %v", label[:3])
	}
	if label[3] != label[4] {
		t.Errorf("component 2 labels differ: %v", label[3:])
	}
	if label[0] == label[3] {
		t.Error("distinct components share a label")
	}
}

func TestCDLPStabilizesCommunities(t *testing.T) {
	// Two dense cliques joined by one edge.
	var edges [][2]int32
	link := func(a, b int32) { edges = append(edges, [2]int32{a, b}, [2]int32{b, a}) }
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			link(i, j)
			link(i+4, j+4)
		}
	}
	link(0, 4)
	g, err := FromEdges("cliques", 8, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	label, _, err := CDLP(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if label[1] != label[2] || label[2] != label[3] {
		t.Errorf("clique 1 not one community: %v", label[:4])
	}
	if label[5] != label[6] || label[6] != label[7] {
		t.Errorf("clique 2 not one community: %v", label[4:])
	}
}

func TestLCCOnTriangle(t *testing.T) {
	var edges [][2]int32
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 0}} {
		edges = append(edges, e, [2]int32{e[1], e[0]})
	}
	g, err := FromEdges("tri", 3, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	lcc, prof, err := LCC(g)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range lcc {
		if math.Abs(c-1) > 1e-12 {
			t.Errorf("triangle LCC[%d] = %v, want 1", v, c)
		}
	}
	if prof.ComputeUnits <= 0 {
		t.Error("LCC reported no compute units")
	}
}

func TestSSSPRespectsWeights(t *testing.T) {
	// 0->1 (10), 0->2 (1), 2->1 (2): shortest 0->1 is 3 via 2.
	edges := [][2]int32{{0, 1}, {0, 2}, {2, 1}}
	weights := []float32{10, 1, 2}
	g, err := FromEdges("w", 3, edges, weights)
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := SSSP(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != 3 {
		t.Errorf("dist[1] = %v, want 3", dist[1])
	}
	if _, _, err := SSSP(g, -1); err == nil {
		t.Error("negative source accepted")
	}
}

func TestSSSPMatchesBFSOnUnitWeights(t *testing.T) {
	g, err := Generate(DatasetSmallWorld, 300, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	bfs, _, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sssp, _, err := SSSP(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range bfs {
		if bfs[v] != sssp[v] {
			t.Fatalf("vertex %d: bfs=%v sssp=%v", v, bfs[v], sssp[v])
		}
	}
}

func TestGenerateDatasets(t *testing.T) {
	for _, k := range []DatasetKind{DatasetRMAT, DatasetUniform, DatasetLattice, DatasetSmallWorld} {
		t.Run(k.String(), func(t *testing.T) {
			g, err := Generate(k, 1000, 1, true)
			if err != nil {
				t.Fatal(err)
			}
			if g.N < 1000 {
				t.Errorf("N = %d, want >= 1000", g.N)
			}
			if g.M() == 0 {
				t.Error("no edges")
			}
			if g.Weights == nil {
				t.Error("weighted graph missing weights")
			}
		})
	}
	if _, err := Generate(DatasetRMAT, 1, 1, false); err == nil {
		t.Error("tiny dataset accepted")
	}
	if _, err := Generate(DatasetKind(99), 100, 1, false); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestLatticeHasHighDiameter(t *testing.T) {
	lat, err := Generate(DatasetLattice, 900, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	rmat, err := Generate(DatasetRMAT, 900, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	_, latProf, err := BFS(lat, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, rmatProf, err := BFS(rmat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if latProf.Iterations <= 2*rmatProf.Iterations {
		t.Errorf("lattice BFS depth %d not much deeper than rmat %d",
			latProf.Iterations, rmatProf.Iterations)
	}
}

func TestEngineRuntimePositiveProperty(t *testing.T) {
	g, err := Generate(DatasetUniform, 500, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	_, prof, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint8) bool {
		engines := StandardEngines()
		e := engines[int(idx)%len(engines)]
		return e.Runtime(prof, g.M()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEngineValidate(t *testing.T) {
	if err := (Engine{}).Validate(); err == nil {
		t.Error("unnamed engine accepted")
	}
	if err := (Engine{Name: "x", PerEdge: -1}).Validate(); err == nil {
		t.Error("negative coefficient accepted")
	}
	for _, e := range StandardEngines() {
		if err := e.Validate(); err != nil {
			t.Errorf("standard engine %s invalid: %v", e.Name, err)
		}
	}
}

func TestRunBenchmarkCoversCube(t *testing.T) {
	cfg := DefaultBenchmarkConfig()
	cfg.VertexCount = 600
	res, err := RunBenchmark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Datasets) * len(cfg.Algorithms) * len(cfg.Engines)
	if len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if c.RuntimeMS <= 0 {
			t.Errorf("cell %s/%s/%s runtime %v", c.Engine, c.Algorithm, c.Dataset, c.RuntimeMS)
		}
	}
}

func TestPADLawHolds(t *testing.T) {
	cfg := DefaultBenchmarkConfig()
	cfg.VertexCount = 800
	res, err := RunBenchmark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzePAD(res)
	if err != nil {
		t.Fatal(err)
	}
	// The PAD law: no platform dominates across workloads.
	if rep.DistinctWinners < 2 {
		t.Errorf("distinct winners = %d, want >= 2 (PAD law)", rep.DistinctWinners)
	}
	// The interaction term must be material (the paper's core claim).
	if rep.InteractionFrac < 0.05 {
		t.Errorf("interaction fraction = %v, want >= 0.05", rep.InteractionFrac)
	}
	if len(rep.WinnerByColumn) != len(cfg.Algorithms)*len(cfg.Datasets) {
		t.Errorf("winner map size = %d", len(rep.WinnerByColumn))
	}
}

func TestHPADAddsWinners(t *testing.T) {
	cfg := DefaultBenchmarkConfig()
	cfg.VertexCount = 800
	res, err := RunBenchmark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeHPAD(res, cfg.Engines)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HWinsColumns == 0 {
		t.Error("heterogeneous platform wins no columns; HPAD extension has no effect")
	}
	if rep.WinnersWithH < rep.WinnersWithoutH {
		t.Errorf("winner count shrank when adding H: %d -> %d", rep.WinnersWithoutH, rep.WinnersWithH)
	}
	// Without heterogeneous engines the analysis must error.
	homog := []Engine{{Name: "a", Workers: 1}, {Name: "b", Workers: 2}}
	if _, err := AnalyzeHPAD(res, homog); err == nil {
		t.Error("HPAD without H engines accepted")
	}
}

func TestGranulaBreakdownMatchesRuntime(t *testing.T) {
	g, err := Generate(DatasetRMAT, 500, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	_, prof, err := PageRank(g, 0.85, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range StandardEngines() {
		b := Breakdown(e, prof, g.M())
		if math.Abs(b.Total()-e.Runtime(prof, g.M())) > 1e-9 {
			t.Errorf("engine %s: breakdown total %v != runtime %v", e.Name, b.Total(), e.Runtime(prof, g.M()))
		}
		if len(b.PerStepMS) != prof.Iterations {
			t.Errorf("engine %s: %d step entries for %d iterations", e.Name, len(b.PerStepMS), prof.Iterations)
		}
	}
}

func TestRankEnginesCompleteness(t *testing.T) {
	cfg := DefaultBenchmarkConfig()
	cfg.VertexCount = 400
	res, err := RunBenchmark(cfg)
	if err != nil {
		t.Fatal(err)
	}
	order := res.RankEngines()
	if len(order) != len(cfg.Engines) {
		t.Errorf("ranked %d engines, want %d", len(order), len(cfg.Engines))
	}
}
