package graphproc

import "fmt"

// Engine is a graph-processing platform model; the "P" of the PAD triangle.
// Engines map an execution profile to a modeled runtime (milliseconds).
// The cost structures are the stylized architectures of the Graphalytics
// platform set:
//
//   - vertex-sequential: one thread, cost follows total traversed edges —
//     no per-superstep overhead, great for small or frontier-sparse work.
//   - vertex-parallel: a BSP worker pool — edge work divides by workers but
//     every superstep pays a barrier, so high-diameter graphs (many
//     supersteps, tiny frontiers) lose the parallel advantage.
//   - edge-centric: streams the full edge list every superstep (X-Stream
//     style) — superb bandwidth, but pays |E| per superstep even when the
//     frontier is tiny.
//   - gpu-offload: very high throughput per edge and compute unit, but a
//     fixed kernel-launch/transfer latency per superstep — wins on few-
//     superstep full-graph algorithms, loses on deep traversals.
type Engine struct {
	Name string
	// Cost coefficients, in ms.
	PerEdge       float64 // per scanned edge (profile-driven)
	PerActive     float64 // per active vertex
	PerStep       float64 // per superstep (barrier / kernel launch)
	PerCompute    float64 // per compute unit (LCC arithmetic)
	FullSweep     bool    // pays |E| per superstep instead of frontier edges
	Workers       int     // parallel division of edge/active/compute work
	Heterogeneous bool    // marks the "H" platforms of the HPAD extension
}

// StandardEngines returns the four platforms of the Table 8 reproduction.
func StandardEngines() []Engine {
	return []Engine{
		{
			Name: "vertex-seq", PerEdge: 1e-4, PerActive: 2e-4, PerStep: 0.0,
			PerCompute: 1e-4, Workers: 1,
		},
		{
			Name: "vertex-par", PerEdge: 1e-4, PerActive: 2e-4, PerStep: 0.8,
			PerCompute: 1e-4, Workers: 8,
		},
		{
			Name: "edge-centric", PerEdge: 2.5e-5, PerActive: 1e-4, PerStep: 0.2,
			PerCompute: 2e-4, Workers: 1, FullSweep: true,
		},
		{
			Name: "gpu-offload", PerEdge: 4e-6, PerActive: 1e-5, PerStep: 5.0,
			PerCompute: 4e-6, Workers: 1, FullSweep: true, Heterogeneous: true,
		},
	}
}

// Runtime models the wall time (ms) of executing the profiled run on the
// engine over a graph with m total edges.
func (e Engine) Runtime(p *Profile, m int) float64 {
	workers := float64(e.Workers)
	if workers < 1 {
		workers = 1
	}
	t := 0.0
	for i := 0; i < p.Iterations; i++ {
		edges := float64(p.EdgesPerIter[i])
		if e.FullSweep {
			edges = float64(m)
		}
		active := float64(p.ActivePerIter[i])
		t += (edges*e.PerEdge + active*e.PerActive) / workers
		t += e.PerStep
	}
	t += p.ComputeUnits * e.PerCompute / workers
	return t
}

// Validate sanity-checks the engine parameters.
func (e Engine) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("graphproc: engine without name")
	}
	if e.PerEdge < 0 || e.PerActive < 0 || e.PerStep < 0 || e.PerCompute < 0 {
		return fmt.Errorf("graphproc: engine %s has negative coefficients", e.Name)
	}
	return nil
}
