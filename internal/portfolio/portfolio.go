// Package portfolio implements portfolio scheduling for datacenters
// (paper §6.6, Table 9): a scheduler that carries a portfolio of scheduling
// policies, periodically simulates the alternatives, and activates the policy
// that currently performs best.
//
// Three selectors are provided, mirroring the evolution reported in the
// paper's Table 9:
//   - Exhaustive: simulate every policy each selection round (Deng et al.
//     JSSPP'13). Accurate but the selection cost grows with the portfolio.
//   - ActiveSet: simulate only the recent top-K policies, refreshing the
//     active set periodically (Deng et al. SC'13) — the key trade-off between
//     decision quality and online selection cost.
//   - QLearning: learn policy values from realized rewards without
//     simulation (Ananke, ICAC'17).
//
// Selection simulates the upcoming window using runtime *estimates*, not true
// runtimes — the scheduler cannot know the future. Workloads with poor
// estimates (the big-data class) therefore degrade selection quality, which
// reproduces the POSUM finding (Table 9, last row).
package portfolio

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"atlarge/internal/cluster"
	"atlarge/internal/sched"
	"atlarge/internal/workload"
)

// Selector chooses a policy for the next scheduling window.
type Selector interface {
	// Name identifies the selector in reports.
	Name() string
	// Select picks a policy for window. simRuns reports how many full window
	// simulations the selection performed (the online selection cost).
	Select(window *workload.Trace, envFactory func() *cluster.Environment, policies []sched.Policy, seed int64) (chosen sched.Policy, simRuns int)
	// Observe feeds back the realized quality (mean bounded slowdown; lower
	// is better) of the chosen policy on the window.
	Observe(policy sched.Policy, realizedSlowdown float64)
}

// estimateTrace clones the window with task runtimes replaced by their
// estimates: the information actually available at selection time.
func estimateTrace(tr *workload.Trace) *workload.Trace {
	cp := &workload.Trace{Name: tr.Name + "+est", Jobs: make([]*workload.Job, len(tr.Jobs))}
	for i, j := range tr.Jobs {
		nj := *j
		nj.Tasks = make([]workload.Task, len(j.Tasks))
		copy(nj.Tasks, j.Tasks)
		for k := range nj.Tasks {
			nj.Tasks[k].Runtime = nj.Tasks[k].RuntimeEstimate
		}
		cp.Jobs[i] = &nj
	}
	return cp
}

// simulateScore runs policy on the estimated window and returns mean bounded
// slowdown (math.Inf on simulation error, which never wins).
func simulateScore(window *workload.Trace, envFactory func() *cluster.Environment, p sched.Policy, seed int64) float64 {
	res, err := sched.NewSimulator(envFactory(), estimateTrace(window), p, seed).Run()
	if err != nil || len(res.Jobs) == 0 {
		return math.Inf(1)
	}
	return res.MeanSlowdown
}

// Exhaustive simulates every policy each round.
type Exhaustive struct{}

// Name implements Selector.
func (Exhaustive) Name() string { return "exhaustive" }

// Select implements Selector. The candidate simulations are independent
// (each gets a fresh environment and an estimate-clone of the window), so
// they run concurrently; the argmin keeps the sequential tie-break (lowest
// portfolio index wins).
func (Exhaustive) Select(window *workload.Trace, envFactory func() *cluster.Environment, policies []sched.Policy, seed int64) (sched.Policy, int) {
	scores := make([]float64, len(policies))
	var wg sync.WaitGroup
	for i, p := range policies {
		wg.Add(1)
		go func(i int, p sched.Policy) {
			defer wg.Done()
			scores[i] = simulateScore(window, envFactory, p, seed)
		}(i, p)
	}
	wg.Wait()
	best := 0
	for i := range policies {
		if scores[i] < scores[best] {
			best = i
		}
	}
	return policies[best], len(policies)
}

// Observe implements Selector (exhaustive selection needs no feedback).
func (Exhaustive) Observe(sched.Policy, float64) {}

// ActiveSet simulates only the K best-scoring policies of recent rounds and
// refreshes the full set every RefreshEvery rounds.
type ActiveSet struct {
	K            int
	RefreshEvery int

	round  int
	scores map[string]float64 // smoothed realized slowdown per policy
}

// NewActiveSet returns an active-set selector keeping k policies and doing a
// full refresh every refreshEvery rounds.
func NewActiveSet(k, refreshEvery int) *ActiveSet {
	return &ActiveSet{K: k, RefreshEvery: refreshEvery, scores: make(map[string]float64)}
}

// Name implements Selector.
func (a *ActiveSet) Name() string { return fmt.Sprintf("active-set(k=%d)", a.K) }

// Select implements Selector.
func (a *ActiveSet) Select(window *workload.Trace, envFactory func() *cluster.Environment, policies []sched.Policy, seed int64) (sched.Policy, int) {
	a.round++
	candidates := policies
	if a.round > 1 && (a.RefreshEvery == 0 || a.round%a.RefreshEvery != 0) {
		candidates = a.topK(policies)
	}
	best := candidates[0]
	bestScore := math.Inf(1)
	for _, p := range candidates {
		s := simulateScore(window, envFactory, p, seed)
		// Seed the score table from simulation so unexplored policies have a
		// baseline before realized feedback arrives.
		if _, ok := a.scores[p.Name()]; !ok {
			a.scores[p.Name()] = s
		}
		if s < bestScore {
			bestScore = s
			best = p
		}
	}
	return best, len(candidates)
}

// topK returns the K policies with the lowest smoothed slowdown; ties and
// unknown policies rank by portfolio order.
func (a *ActiveSet) topK(policies []sched.Policy) []sched.Policy {
	k := a.K
	if k <= 0 || k > len(policies) {
		k = len(policies)
	}
	idx := make([]int, len(policies))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		sx, okx := a.scores[policies[idx[x]].Name()]
		sy, oky := a.scores[policies[idx[y]].Name()]
		if okx != oky {
			return okx // known scores first
		}
		return sx < sy
	})
	out := make([]sched.Policy, 0, k)
	for _, i := range idx[:k] {
		out = append(out, policies[i])
	}
	return out
}

// Observe implements Selector with exponential smoothing.
func (a *ActiveSet) Observe(p sched.Policy, realized float64) {
	const alpha = 0.5
	if old, ok := a.scores[p.Name()]; ok {
		a.scores[p.Name()] = alpha*realized + (1-alpha)*old
	} else {
		a.scores[p.Name()] = realized
	}
}

// QLearning selects policies epsilon-greedily on learned values, with no
// online simulation (selection cost 0), in the style of Ananke.
type QLearning struct {
	Epsilon float64
	Alpha   float64

	values map[string]float64
	seen   map[string]bool
	step   int
}

// NewQLearning returns a Q-learning selector with exploration rate epsilon
// and learning rate alpha.
func NewQLearning(epsilon, alpha float64) *QLearning {
	return &QLearning{
		Epsilon: epsilon,
		Alpha:   alpha,
		values:  make(map[string]float64),
		seen:    make(map[string]bool),
	}
}

// Name implements Selector.
func (q *QLearning) Name() string { return "q-learning" }

// Select implements Selector. It never simulates (simRuns = 0).
func (q *QLearning) Select(window *workload.Trace, envFactory func() *cluster.Environment, policies []sched.Policy, seed int64) (sched.Policy, int) {
	q.step++
	// Explore any policy not yet tried, in order.
	for _, p := range policies {
		if !q.seen[p.Name()] {
			q.seen[p.Name()] = true
			return p, 0
		}
	}
	// Epsilon-greedy: deterministic pseudo-random exploration from the step
	// counter and seed, so runs are reproducible.
	h := uint64(seed)*2654435761 + uint64(q.step)*40503
	if float64(h%1000)/1000 < q.Epsilon {
		return policies[int(h/1000)%len(policies)], 0
	}
	best := policies[0]
	bestV := math.Inf(1)
	for _, p := range policies {
		if v, ok := q.values[p.Name()]; ok && v < bestV {
			bestV = v
			best = p
		}
	}
	return best, 0
}

// Observe implements Selector with a running value update.
func (q *QLearning) Observe(p sched.Policy, realized float64) {
	if v, ok := q.values[p.Name()]; ok {
		q.values[p.Name()] = v + q.Alpha*(realized-v)
	} else {
		q.values[p.Name()] = realized
	}
}
