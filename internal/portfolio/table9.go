package portfolio

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"atlarge/internal/cluster"
	"atlarge/internal/sched"
	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// Table9Row is one reproduced row of the paper's Table 9.
type Table9Row struct {
	Study       string
	Workload    string
	Environment string
	// Portfolio, BestStatic, WorstStatic are mean bounded slowdowns.
	Portfolio   float64
	BestStatic  float64
	WorstStatic float64
	BestPolicy  string
	WorstPolicy string
	// Finding is the reproduced verdict ("PS is useful" / "useful, but...").
	Finding string
	// NewQuestion echoes the co-evolving problem the row triggered.
	NewQuestion string
	// SelectionRegret is Portfolio/BestStatic - 1 (0 means the portfolio
	// matched the best static policy).
	SelectionRegret float64
}

// table9Spec describes one study row.
type table9Spec struct {
	study       string
	classes     []workload.Class
	envKinds    []cluster.Kind
	newQuestion string
}

// table9Specs mirrors the seven study rows of Table 9.
func table9Specs() []table9Spec {
	return []table9Spec{
		{"Deng'13 (JSSPP)", []workload.Class{workload.ClassSynthetic}, []cluster.Kind{cluster.KindCluster}, "Works online?"},
		{"Deng'13 (SC)", []workload.Class{workload.ClassScientific}, []cluster.Kind{cluster.KindGrid, cluster.KindCloud}, "Other W/Env?"},
		{"Shen'13 (Euro-Par)", []workload.Class{workload.ClassScientific, workload.ClassGaming}, []cluster.Kind{cluster.KindCluster}, "Other W/Env?"},
		{"Shai'13 (JSSPP)", []workload.Class{workload.ClassComputerEngineering}, []cluster.Kind{cluster.KindGeoDistributed}, "Other W/Env?"},
		{"van Beek'15 (Computer)", []workload.Class{workload.ClassBusinessCritical}, []cluster.Kind{cluster.KindMultiCluster}, "Other W/Env?"},
		{"Ma'17 (ICAC)", []workload.Class{workload.ClassIndustrial}, []cluster.Kind{cluster.KindCloud}, "Other W/Env?"},
		{"Voinea'18 (BigData)", []workload.Class{workload.ClassBigData}, []cluster.Kind{cluster.KindCluster}, "BD limits?"},
	}
}

// mixedTrace interleaves equal job counts from each class.
func mixedTrace(classes []workload.Class, jobsPerClass int, r *rand.Rand) *workload.Trace {
	out := &workload.Trace{Name: "mixed"}
	id := 0
	taskID := 0
	for _, c := range classes {
		tr := workload.StandardGenerator(c).Generate(jobsPerClass, r)
		for _, j := range tr.Jobs {
			id++
			nj := *j
			nj.ID = id
			nj.Tasks = append([]workload.Task(nil), j.Tasks...)
			remap := make(map[int]int, len(nj.Tasks))
			for k := range nj.Tasks {
				taskID++
				remap[nj.Tasks[k].ID] = taskID
				nj.Tasks[k].ID = taskID
				nj.Tasks[k].JobID = id
			}
			for k := range nj.Tasks {
				for d := range nj.Tasks[k].Deps {
					nj.Tasks[k].Deps[d] = remap[nj.Tasks[k].Deps[d]]
				}
			}
			out.Jobs = append(out.Jobs, &nj)
		}
	}
	out.SortBySubmit()
	return out
}

// compositeEnv joins the clusters of several environment kinds into one
// environment (used for the G+CD row).
func compositeEnv(kinds []cluster.Kind) *cluster.Environment {
	if len(kinds) == 1 {
		return cluster.StandardEnvironment(kinds[0])
	}
	env := &cluster.Environment{Kind: kinds[0]}
	for _, k := range kinds {
		sub := cluster.StandardEnvironment(k)
		env.Clusters = append(env.Clusters, sub.Clusters...)
		if sub.InterLatency > env.InterLatency {
			env.InterLatency = sub.InterLatency
		}
		if sub.Provider != nil && env.Provider == nil {
			env.Provider = sub.Provider
		}
	}
	return env
}

// Table9Config parameterizes the experiment scale.
type Table9Config struct {
	JobsPerRow int
	WindowSize int
	// LoadFactor compresses submission times to raise contention; 1 keeps
	// the generators' native (light) load, larger values stress the
	// environments so policies differentiate.
	LoadFactor float64
	Seed       int64
	// Workers bounds the number of study rows simulated concurrently;
	// <= 0 means GOMAXPROCS. Every row derives its own seed, so the
	// result is identical for any worker count.
	Workers int
}

// DefaultTable9Config returns the scale used by the benchmarks.
func DefaultTable9Config() Table9Config {
	return Table9Config{JobsPerRow: 160, WindowSize: 40, LoadFactor: 60, Seed: 42}
}

// RunTable9 reproduces the seven rows of Table 9: for each study row it runs
// the portfolio scheduler against all static baselines and derives the
// "PS is useful" verdict. Rows are independent simulations with per-row
// seeds, so they execute on a bounded worker pool; results keep the spec
// order regardless of scheduling.
func RunTable9(cfg Table9Config) ([]Table9Row, error) {
	specs := table9Specs()
	rows := make([]Table9Row, len(specs))
	errs := make([]error, len(specs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rows[i], errs[i] = runTable9Row(cfg, specs[i], i)
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// runTable9Row simulates one study row with its derived seed.
func runTable9Row(cfg Table9Config, spec table9Spec, i int) (Table9Row, error) {
	r := rand.New(rand.NewSource(cfg.Seed + int64(i)))
	jobsPerClass := cfg.JobsPerRow / len(spec.classes)
	tr := mixedTrace(spec.classes, jobsPerClass, r)
	if cfg.LoadFactor > 1 {
		for _, j := range tr.Jobs {
			j.Submit /= sim.Time(cfg.LoadFactor)
		}
	}

	envFactory := func() *cluster.Environment { return compositeEnv(spec.envKinds) }
	s := &Scheduler{
		Policies:   sched.DefaultPortfolio(),
		Selector:   Exhaustive{},
		WindowSize: cfg.WindowSize,
		EnvFactory: envFactory,
		Seed:       cfg.Seed + int64(i),
	}
	res, err := s.Run(tr)
	if err != nil {
		return Table9Row{}, fmt.Errorf("portfolio: row %s: %w", spec.study, err)
	}
	baselines, err := s.StaticBaselines(tr)
	if err != nil {
		return Table9Row{}, fmt.Errorf("portfolio: row %s baselines: %w", spec.study, err)
	}

	row := Table9Row{
		Study:       spec.study,
		Workload:    classesLabel(spec.classes),
		Environment: kindsLabel(spec.envKinds),
		Portfolio:   res.MeanSlowdown,
		NewQuestion: spec.newQuestion,
	}
	row.BestStatic, row.WorstStatic = bestWorst(baselines, s.Policies, &row.BestPolicy, &row.WorstPolicy)
	if row.BestStatic > 0 {
		row.SelectionRegret = row.Portfolio/row.BestStatic - 1
	}
	row.Finding = verdict(row)
	return row, nil
}

func classesLabel(cs []workload.Class) string {
	s := ""
	for i, c := range cs {
		if i > 0 {
			s += "+"
		}
		s += c.String()
	}
	return s
}

func kindsLabel(ks []cluster.Kind) string {
	s := ""
	for i, k := range ks {
		if i > 0 {
			s += "+"
		}
		s += k.String()
	}
	return s
}

// bestWorst scans baselines in portfolio order so ties resolve to the
// first-listed policy; iterating the map directly would make tied rows
// nondeterministic across runs.
func bestWorst(baselines map[string]float64, order []sched.Policy, bestName, worstName *string) (best, worst float64) {
	first := true
	for _, p := range order {
		name := p.Name()
		v, ok := baselines[name]
		if !ok {
			continue
		}
		if first {
			best, worst = v, v
			*bestName, *worstName = name, name
			first = false
			continue
		}
		if v < best {
			best = v
			*bestName = name
		}
		if v > worst {
			worst = v
			*worstName = name
		}
	}
	return best, worst
}

// verdict derives the Table 9 finding string. The thresholds encode the
// paper's qualitative claims: PS is "useful" when it lands near the best
// static policy; the big-data row is expected to show measurable regret
// ("useful, but...") because runtime estimates there are poor.
func verdict(row Table9Row) string {
	switch {
	case row.SelectionRegret <= 0.10 && row.Portfolio <= row.WorstStatic:
		return "PS is useful"
	case row.Portfolio <= row.WorstStatic:
		return "PS is useful, but selection shows regret"
	default:
		return "PS underperforms (unpredictable runtimes)"
	}
}
