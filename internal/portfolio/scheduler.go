package portfolio

import (
	"fmt"
	"sync"

	"atlarge/internal/cluster"
	"atlarge/internal/sched"
	"atlarge/internal/stats"
	"atlarge/internal/workload"
)

// WindowChoice records one selection round.
type WindowChoice struct {
	Window   int
	Policy   string
	SimRuns  int     // selection cost in full window simulations
	Realized float64 // realized mean bounded slowdown on the window
}

// Result aggregates a portfolio-scheduling run.
type Result struct {
	Selector       string
	Choices        []WindowChoice
	MeanSlowdown   float64 // over all jobs
	MeanResponse   float64
	TotalSimRuns   int
	DistinctPicked int
}

// Scheduler is a periodic portfolio scheduler: it partitions the incoming
// trace into windows of WindowSize jobs and, per window, asks the Selector
// for a policy, executes the window under it, and feeds back the realized
// quality.
//
// Executing windows on a fresh environment approximates the carried-over
// queue state; the approximation is acceptable because selection happens at
// low-utilization boundaries in the original studies.
type Scheduler struct {
	Policies   []sched.Policy
	Selector   Selector
	WindowSize int
	EnvFactory func() *cluster.Environment
	Seed       int64
}

// Run executes the full trace.
func (s *Scheduler) Run(tr *workload.Trace) (*Result, error) {
	if len(s.Policies) == 0 {
		return nil, fmt.Errorf("portfolio: empty policy set")
	}
	if s.WindowSize <= 0 {
		return nil, fmt.Errorf("portfolio: window size %d", s.WindowSize)
	}
	sorted := &workload.Trace{Name: tr.Name, Jobs: append([]*workload.Job(nil), tr.Jobs...)}
	sorted.SortBySubmit()

	res := &Result{Selector: s.Selector.Name()}
	var allSlowdowns, allResponses []float64
	picked := make(map[string]bool)

	for w := 0; w*s.WindowSize < len(sorted.Jobs); w++ {
		lo := w * s.WindowSize
		hi := lo + s.WindowSize
		if hi > len(sorted.Jobs) {
			hi = len(sorted.Jobs)
		}
		window := &workload.Trace{Name: fmt.Sprintf("%s/w%d", tr.Name, w), Jobs: sorted.Jobs[lo:hi]}

		policy, simRuns := s.Selector.Select(window, s.EnvFactory, s.Policies, s.Seed+int64(w))
		real, err := sched.NewSimulator(s.EnvFactory(), window, policy, s.Seed+int64(w)).Run()
		if err != nil {
			return nil, fmt.Errorf("portfolio: window %d with %s: %w", w, policy.Name(), err)
		}
		s.Selector.Observe(policy, real.MeanSlowdown)

		res.Choices = append(res.Choices, WindowChoice{
			Window: w, Policy: policy.Name(), SimRuns: simRuns, Realized: real.MeanSlowdown,
		})
		res.TotalSimRuns += simRuns
		picked[policy.Name()] = true
		for _, js := range real.Jobs {
			allSlowdowns = append(allSlowdowns, js.Slowdown)
			allResponses = append(allResponses, float64(js.Response))
		}
	}
	res.MeanSlowdown = stats.Mean(allSlowdowns)
	res.MeanResponse = stats.Mean(allResponses)
	res.DistinctPicked = len(picked)
	return res, nil
}

// StaticBaselines runs every individual policy over the same windowed
// execution (same window boundaries, same seeds) and returns the mean
// slowdown per policy. This isolates the value of *selection* from the value
// of any single policy. The per-policy runs touch disjoint simulator state,
// so each policy is simulated on its own goroutine.
func (s *Scheduler) StaticBaselines(tr *workload.Trace) (map[string]float64, error) {
	sorted := &workload.Trace{Name: tr.Name, Jobs: append([]*workload.Job(nil), tr.Jobs...)}
	sorted.SortBySubmit()
	means := make([]float64, len(s.Policies))
	errs := make([]error, len(s.Policies))
	var wg sync.WaitGroup
	for i, p := range s.Policies {
		wg.Add(1)
		go func(i int, p sched.Policy) {
			defer wg.Done()
			var all []float64
			for w := 0; w*s.WindowSize < len(sorted.Jobs); w++ {
				lo := w * s.WindowSize
				hi := lo + s.WindowSize
				if hi > len(sorted.Jobs) {
					hi = len(sorted.Jobs)
				}
				window := &workload.Trace{Jobs: sorted.Jobs[lo:hi]}
				res, err := sched.NewSimulator(s.EnvFactory(), window, p, s.Seed+int64(w)).Run()
				if err != nil {
					errs[i] = fmt.Errorf("portfolio: baseline %s window %d: %w", p.Name(), w, err)
					return
				}
				for _, js := range res.Jobs {
					all = append(all, js.Slowdown)
				}
			}
			means[i] = stats.Mean(all)
		}(i, p)
	}
	wg.Wait()
	out := make(map[string]float64, len(s.Policies))
	for i, p := range s.Policies {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[p.Name()] = means[i]
	}
	return out, nil
}
