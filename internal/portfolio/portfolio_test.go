package portfolio

import (
	"math/rand"
	"testing"

	"atlarge/internal/cluster"
	"atlarge/internal/sched"
	"atlarge/internal/workload"
)

func smallEnvFactory() *cluster.Environment {
	return cluster.NewHomogeneous(cluster.KindCluster, 1, 4, 8)
}

func genTrace(t *testing.T, class workload.Class, n int, seed int64) *workload.Trace {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	return workload.StandardGenerator(class).Generate(n, r)
}

func TestEstimateTraceSwapsRuntimes(t *testing.T) {
	tr := &workload.Trace{Jobs: []*workload.Job{{
		ID: 1,
		Tasks: []workload.Task{
			{ID: 1, Runtime: 100, RuntimeEstimate: 50, CPUs: 1},
		},
	}}}
	est := estimateTrace(tr)
	if est.Jobs[0].Tasks[0].Runtime != 50 {
		t.Errorf("estimated runtime = %v, want 50", est.Jobs[0].Tasks[0].Runtime)
	}
	if tr.Jobs[0].Tasks[0].Runtime != 100 {
		t.Error("estimateTrace mutated the source trace")
	}
}

func TestExhaustiveSelectsAPolicy(t *testing.T) {
	tr := genTrace(t, workload.ClassSynthetic, 20, 1)
	policies := sched.DefaultPortfolio()
	chosen, runs := Exhaustive{}.Select(tr, smallEnvFactory, policies, 1)
	if chosen == nil {
		t.Fatal("no policy chosen")
	}
	if runs != len(policies) {
		t.Errorf("simRuns = %d, want %d", runs, len(policies))
	}
}

func TestActiveSetLimitsSimulations(t *testing.T) {
	tr := genTrace(t, workload.ClassSynthetic, 20, 1)
	policies := sched.DefaultPortfolio()
	as := NewActiveSet(2, 0)
	_, runs1 := as.Select(tr, smallEnvFactory, policies, 1)
	if runs1 != len(policies) {
		t.Errorf("first round simRuns = %d, want full set %d", runs1, len(policies))
	}
	_, runs2 := as.Select(tr, smallEnvFactory, policies, 2)
	if runs2 != 2 {
		t.Errorf("second round simRuns = %d, want K=2", runs2)
	}
}

func TestActiveSetRefresh(t *testing.T) {
	tr := genTrace(t, workload.ClassSynthetic, 15, 1)
	policies := sched.DefaultPortfolio()
	as := NewActiveSet(2, 3)
	_, _ = as.Select(tr, smallEnvFactory, policies, 1) // round 1: full
	_, r2 := as.Select(tr, smallEnvFactory, policies, 2)
	_, r3 := as.Select(tr, smallEnvFactory, policies, 3) // round 3: refresh
	if r2 != 2 {
		t.Errorf("round 2 = %d sims, want 2", r2)
	}
	if r3 != len(policies) {
		t.Errorf("refresh round = %d sims, want %d", r3, len(policies))
	}
}

func TestQLearningNeverSimulates(t *testing.T) {
	tr := genTrace(t, workload.ClassSynthetic, 10, 1)
	policies := sched.DefaultPortfolio()
	q := NewQLearning(0.1, 0.5)
	totalSims := 0
	for i := 0; i < 20; i++ {
		p, sims := q.Select(tr, smallEnvFactory, policies, int64(i))
		totalSims += sims
		q.Observe(p, 2.0)
	}
	if totalSims != 0 {
		t.Errorf("q-learning performed %d simulations, want 0", totalSims)
	}
}

func TestQLearningExploresAllThenExploits(t *testing.T) {
	tr := genTrace(t, workload.ClassSynthetic, 10, 1)
	policies := sched.DefaultPortfolio()
	q := NewQLearning(0, 0.5) // no epsilon exploration
	seen := map[string]bool{}
	// First len(policies) rounds must try every policy once.
	for i := 0; i < len(policies); i++ {
		p, _ := q.Select(tr, smallEnvFactory, policies, 1)
		seen[p.Name()] = true
		// Make FCFS look best, everything else bad.
		if p.Name() == "FCFS" {
			q.Observe(p, 1.0)
		} else {
			q.Observe(p, 10.0)
		}
	}
	if len(seen) != len(policies) {
		t.Fatalf("explored %d distinct policies, want %d", len(seen), len(policies))
	}
	p, _ := q.Select(tr, smallEnvFactory, policies, 1)
	if p.Name() != "FCFS" {
		t.Errorf("exploit chose %s, want FCFS", p.Name())
	}
}

func TestSchedulerRunCompletes(t *testing.T) {
	tr := genTrace(t, workload.ClassScientific, 60, 3)
	s := &Scheduler{
		Policies:   sched.DefaultPortfolio(),
		Selector:   Exhaustive{},
		WindowSize: 20,
		EnvFactory: smallEnvFactory,
		Seed:       1,
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Choices) != 3 {
		t.Errorf("windows = %d, want 3", len(res.Choices))
	}
	if res.MeanSlowdown < 1 {
		t.Errorf("MeanSlowdown = %v, want >= 1", res.MeanSlowdown)
	}
	if res.TotalSimRuns != 3*len(s.Policies) {
		t.Errorf("TotalSimRuns = %d, want %d", res.TotalSimRuns, 3*len(s.Policies))
	}
}

func TestSchedulerRejectsBadConfig(t *testing.T) {
	tr := genTrace(t, workload.ClassSynthetic, 5, 1)
	s := &Scheduler{Selector: Exhaustive{}, WindowSize: 10, EnvFactory: smallEnvFactory}
	if _, err := s.Run(tr); err == nil {
		t.Error("empty policy set accepted")
	}
	s.Policies = sched.DefaultPortfolio()
	s.WindowSize = 0
	if _, err := s.Run(tr); err == nil {
		t.Error("zero window size accepted")
	}
}

func TestPortfolioBeatsWorstStatic(t *testing.T) {
	tr := genTrace(t, workload.ClassScientific, 80, 5)
	s := &Scheduler{
		Policies:   sched.DefaultPortfolio(),
		Selector:   Exhaustive{},
		WindowSize: 20,
		EnvFactory: smallEnvFactory,
		Seed:       5,
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.StaticBaselines(tr)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, v := range base {
		if v > worst {
			worst = v
		}
	}
	if res.MeanSlowdown > worst {
		t.Errorf("portfolio slowdown %v worse than worst static %v", res.MeanSlowdown, worst)
	}
}

func TestRunTable9ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("table 9 sweep is slow")
	}
	cfg := Table9Config{JobsPerRow: 60, WindowSize: 15, Seed: 42}
	rows, err := RunTable9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	useful := 0
	for _, row := range rows {
		if row.Portfolio <= 0 || row.BestStatic <= 0 {
			t.Errorf("row %s has non-positive slowdowns: %+v", row.Study, row)
		}
		if row.Portfolio <= row.WorstStatic {
			useful++
		}
	}
	// Shape: portfolio scheduling is no worse than the worst static policy
	// in the (large) majority of rows.
	if useful < 5 {
		t.Errorf("portfolio beat worst-static in only %d/7 rows", useful)
	}
	// The big-data row exists and carries its co-evolved question.
	last := rows[6]
	if last.Workload != "BD" || last.NewQuestion != "BD limits?" {
		t.Errorf("last row = %+v, want BD row", last)
	}
}

func TestMixedTraceValidAndInterleaved(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := mixedTrace([]workload.Class{workload.ClassScientific, workload.ClassGaming}, 10, r)
	if len(tr.Jobs) != 20 {
		t.Fatalf("jobs = %d, want 20", len(tr.Jobs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("mixed trace invalid: %v", err)
	}
	seenIDs := map[int]bool{}
	classes := map[workload.Class]bool{}
	for _, j := range tr.Jobs {
		if seenIDs[j.ID] {
			t.Fatalf("duplicate job id %d", j.ID)
		}
		seenIDs[j.ID] = true
		classes[j.Class] = true
	}
	if len(classes) != 2 {
		t.Errorf("classes present = %d, want 2", len(classes))
	}
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatal("mixed trace not sorted by submit")
		}
	}
}

func TestCompositeEnv(t *testing.T) {
	env := compositeEnv([]cluster.Kind{cluster.KindGrid, cluster.KindCloud})
	wantClusters := 4 + 1
	if len(env.Clusters) != wantClusters {
		t.Errorf("clusters = %d, want %d", len(env.Clusters), wantClusters)
	}
	if env.Provider == nil {
		t.Error("composite env lost the cloud provider")
	}
	single := compositeEnv([]cluster.Kind{cluster.KindCluster})
	if len(single.Clusters) != 1 {
		t.Errorf("single env clusters = %d", len(single.Clusters))
	}
}
