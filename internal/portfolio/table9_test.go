package portfolio

import (
	"testing"

	"atlarge/internal/cluster"
	"atlarge/internal/sched"
	"atlarge/internal/workload"
)

func TestLabels(t *testing.T) {
	if got := classesLabel([]workload.Class{workload.ClassScientific, workload.ClassGaming}); got != "Sci+G" {
		t.Errorf("classesLabel = %q", got)
	}
	if got := kindsLabel([]cluster.Kind{cluster.KindGrid, cluster.KindCloud}); got != "G+CD" {
		t.Errorf("kindsLabel = %q", got)
	}
	if got := classesLabel(nil); got != "" {
		t.Errorf("empty classesLabel = %q", got)
	}
}

func TestBestWorst(t *testing.T) {
	order := []sched.Policy{namedPolicy("a"), namedPolicy("b"), namedPolicy("c")}
	var bestName, worstName string
	best, worst := bestWorst(map[string]float64{"a": 2, "b": 1, "c": 3}, order, &bestName, &worstName)
	if best != 1 || bestName != "b" {
		t.Errorf("best = %v (%s)", best, bestName)
	}
	if worst != 3 || worstName != "c" {
		t.Errorf("worst = %v (%s)", worst, worstName)
	}
}

// TestBestWorstTieBreak pins the deterministic tie-break: ties resolve to the
// first policy in portfolio order, not to map iteration order.
func TestBestWorstTieBreak(t *testing.T) {
	order := []sched.Policy{namedPolicy("x"), namedPolicy("y"), namedPolicy("z")}
	for i := 0; i < 20; i++ {
		var bestName, worstName string
		bestWorst(map[string]float64{"x": 1, "y": 1, "z": 1}, order, &bestName, &worstName)
		if bestName != "x" || worstName != "x" {
			t.Fatalf("tied best/worst = %s/%s, want x/x", bestName, worstName)
		}
	}
}

// namedPolicy is a minimal policy stub for ordering tests.
type namedPolicy string

func (p namedPolicy) Name() string                             { return string(p) }
func (p namedPolicy) Order(*sched.Context, []*sched.TaskState) {}
func (p namedPolicy) AllowSkip() bool                          { return false }
func (p namedPolicy) EasyReservation() bool                    { return false }
func (p namedPolicy) StaticOrder() bool                        { return true }
func (p namedPolicy) PureOrder() bool                          { return true }

func TestVerdictBands(t *testing.T) {
	tests := []struct {
		row  Table9Row
		want string
	}{
		{Table9Row{Portfolio: 1.0, BestStatic: 1.0, WorstStatic: 2.0, SelectionRegret: 0}, "PS is useful"},
		{Table9Row{Portfolio: 1.5, BestStatic: 1.0, WorstStatic: 2.0, SelectionRegret: 0.5}, "PS is useful, but selection shows regret"},
		{Table9Row{Portfolio: 3.0, BestStatic: 1.0, WorstStatic: 2.0, SelectionRegret: 2.0}, "PS underperforms (unpredictable runtimes)"},
	}
	for _, tt := range tests {
		if got := verdict(tt.row); got != tt.want {
			t.Errorf("verdict(%+v) = %q, want %q", tt.row, got, tt.want)
		}
	}
}

// TestRunTable9WorkersDeterministic pins the row-pool guarantee: any worker
// count yields identical rows for the same config (per-row derived seeds,
// order-indexed collection).
func TestRunTable9WorkersDeterministic(t *testing.T) {
	cfg := Table9Config{JobsPerRow: 21, WindowSize: 7, LoadFactor: 10, Seed: 3}
	cfg.Workers = 1
	seq, err := RunTable9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunTable9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d differs:\n  seq %+v\n  par %+v", i, seq[i], par[i])
		}
	}
}

func TestTable9SpecsShape(t *testing.T) {
	specs := table9Specs()
	if len(specs) != 7 {
		t.Fatalf("specs = %d, want 7 rows", len(specs))
	}
	for _, s := range specs {
		if s.study == "" || len(s.classes) == 0 || len(s.envKinds) == 0 || s.newQuestion == "" {
			t.Errorf("incomplete spec %+v", s)
		}
	}
	// Row 2 is the G+CD composite; row 3 the Sci+Gam mix (paper Table 9).
	if len(specs[1].envKinds) != 2 {
		t.Error("Deng'13 SC row must combine two environments")
	}
	if len(specs[2].classes) != 2 {
		t.Error("Shen'13 row must combine two workload classes")
	}
}
