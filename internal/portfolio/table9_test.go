package portfolio

import (
	"testing"

	"atlarge/internal/cluster"
	"atlarge/internal/workload"
)

func TestLabels(t *testing.T) {
	if got := classesLabel([]workload.Class{workload.ClassScientific, workload.ClassGaming}); got != "Sci+G" {
		t.Errorf("classesLabel = %q", got)
	}
	if got := kindsLabel([]cluster.Kind{cluster.KindGrid, cluster.KindCloud}); got != "G+CD" {
		t.Errorf("kindsLabel = %q", got)
	}
	if got := classesLabel(nil); got != "" {
		t.Errorf("empty classesLabel = %q", got)
	}
}

func TestBestWorst(t *testing.T) {
	var bestName, worstName string
	best, worst := bestWorst(map[string]float64{"a": 2, "b": 1, "c": 3}, &bestName, &worstName)
	if best != 1 || bestName != "b" {
		t.Errorf("best = %v (%s)", best, bestName)
	}
	if worst != 3 || worstName != "c" {
		t.Errorf("worst = %v (%s)", worst, worstName)
	}
}

func TestVerdictBands(t *testing.T) {
	tests := []struct {
		row  Table9Row
		want string
	}{
		{Table9Row{Portfolio: 1.0, BestStatic: 1.0, WorstStatic: 2.0, SelectionRegret: 0}, "PS is useful"},
		{Table9Row{Portfolio: 1.5, BestStatic: 1.0, WorstStatic: 2.0, SelectionRegret: 0.5}, "PS is useful, but selection shows regret"},
		{Table9Row{Portfolio: 3.0, BestStatic: 1.0, WorstStatic: 2.0, SelectionRegret: 2.0}, "PS underperforms (unpredictable runtimes)"},
	}
	for _, tt := range tests {
		if got := verdict(tt.row); got != tt.want {
			t.Errorf("verdict(%+v) = %q, want %q", tt.row, got, tt.want)
		}
	}
}

func TestTable9SpecsShape(t *testing.T) {
	specs := table9Specs()
	if len(specs) != 7 {
		t.Fatalf("specs = %d, want 7 rows", len(specs))
	}
	for _, s := range specs {
		if s.study == "" || len(s.classes) == 0 || len(s.envKinds) == 0 || s.newQuestion == "" {
			t.Errorf("incomplete spec %+v", s)
		}
	}
	// Row 2 is the G+CD composite; row 3 the Sci+Gam mix (paper Table 9).
	if len(specs[1].envKinds) != 2 {
		t.Error("Deng'13 SC row must combine two environments")
	}
	if len(specs[2].classes) != 2 {
		t.Error("Shen'13 row must combine two workload classes")
	}
}
