package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atlarge/internal/trace"
	"atlarge/internal/workload"
)

func specJSON(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

const validSweepSpec = `{
	"version": 1,
	"name": "t",
	"workload": {"class": "scientific", "jobs": 12},
	"cluster": {"kind": "CL", "machines": 4},
	"replicas": 2,
	"seed": 7,
	"sweep": {
		"policy": ["sjf", "fcfs"],
		"load": [0.5, 0.9]
	}
}`

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"version": 1, "name": "x", "polciy": "sjf"}`))
	if err == nil || !strings.Contains(err.Error(), "polciy") {
		t.Fatalf("typo field not rejected: %v", err)
	}
}

func TestValidateCollectsActionableErrors(t *testing.T) {
	s := specJSON(t, `{
		"version": 3,
		"name": "",
		"domain": "sched",
		"workload": {"class": "hpc", "jobs": -1, "load": -0.5,
			"arrival": {"process": "pareto"}},
		"cluster": {"kind": "edge", "cores": -2},
		"policy": "heft",
		"replicas": -1,
		"objective": "latency",
		"sweep": {"speed": [1], "load": [], "policy": ["sjf", "nope", 3], "jobs": [0.5]}
	}`)
	err := s.Validate()
	if err == nil {
		t.Fatal("malformed spec accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		"version: got 3",
		"name: required",
		"workload.class",    // unknown class
		"known:",            // catalogs listed
		"workload.jobs",     // negative
		"workload.load",     // negative
		"workload.arrival",  // unknown process
		"cluster.kind",      // unknown kind
		"cluster.cores",     // negative
		"policy:",           // unknown policy
		"replicas",          // negative
		"objective",         // unknown metric
		"sweep.speed",       // unknown axis
		"sweep.load: empty", // empty axis
		"sweep.policy[1]",   // unknown swept policy
		"sweep.policy[2]",   // wrong type
		"sweep.jobs[0]",     // non-integer
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
}

func TestValidateAcceptsSweptPolicyWithoutBase(t *testing.T) {
	s := specJSON(t, `{
		"version": 1, "name": "t",
		"workload": {"class": "syn", "jobs": 5},
		"sweep": {"policy": ["sjf", "fcfs"]}
	}`)
	if err := s.Validate(); err != nil {
		t.Fatalf("spec with swept policy rejected: %v", err)
	}
}

func TestValidateRejectsDuplicateSweepValues(t *testing.T) {
	s := specJSON(t, `{
		"version": 1, "name": "t", "policy": "sjf",
		"workload": {"class": "syn", "jobs": 5},
		"sweep": {"load": [0.5, 0.5]}
	}`)
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate value") {
		t.Fatalf("duplicate sweep value accepted: %v", err)
	}
}

func TestExpandCrossProduct(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	// Axes expand in lexicographic name order: load before policy.
	wantIDs := []string{
		"t/load=0.5,policy=sjf",
		"t/load=0.5,policy=fcfs",
		"t/load=0.9,policy=sjf",
		"t/load=0.9,policy=fcfs",
	}
	for i, cell := range cells {
		if cell.ID() != wantIDs[i] {
			t.Errorf("cell %d ID = %q, want %q", i, cell.ID(), wantIDs[i])
		}
	}
	if cells[0].Policy != "sjf" || cells[1].Policy != "fcfs" {
		t.Errorf("policy not applied: %q, %q", cells[0].Policy, cells[1].Policy)
	}
	if cells[0].Workload.Load != 0.5 || cells[2].Workload.Load != 0.9 {
		t.Errorf("load not applied: %v, %v", cells[0].Workload.Load, cells[2].Workload.Load)
	}
	// The base spec is untouched by expansion.
	if s.Workload.Load != 0 || s.Policy != "" {
		t.Errorf("expansion mutated the base spec: %+v", s)
	}
}

func TestSingleRejectsSweeps(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	_, err := Single(s)
	if err == nil || !strings.Contains(err.Error(), "scenario sweep") {
		t.Fatalf("Single accepted a sweep spec: %v", err)
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	var outs []string
	for _, par := range []int{1, 8} {
		rep, err := Run(context.Background(), s, cells, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Error("JSON report differs between --parallel 1 and --parallel 8")
	}
}

func TestRunReportShape(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), s, cells, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicas != 2 || rep.Seed != 7 || rep.Objective != MetricMeanResponse {
		t.Errorf("header wrong: %+v", rep)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells", len(rep.Cells))
	}
	for _, cell := range rep.Cells {
		m, ok := cell.Metrics[MetricMeanResponse]
		if !ok {
			t.Fatalf("cell %s missing %s", cell.ID, MetricMeanResponse)
		}
		if len(m.Values) != 2 {
			t.Errorf("cell %s has %d replica values, want 2", cell.ID, len(m.Values))
		}
		if jobs := cell.Metrics[MetricJobs]; jobs.Mean != 12 {
			t.Errorf("cell %s jobs = %v, want 12", cell.ID, jobs.Mean)
		}
	}
	if rep.BestCell == "" {
		t.Error("no best cell over a 4-cell sweep")
	}
	// Every axis value group with >= 2 cells must have exactly one best.
	marks := 0
	for _, cell := range rep.Cells {
		marks += len(cell.BestFor)
	}
	if marks != 4 { // 2 axes × 2 values each
		t.Errorf("got %d best_for marks, want 4", marks)
	}

	var text, csvOut bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scenario \"t\"", "axis load", "axis policy", MetricMeanResponse, "best cell"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	if err := rep.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvOut.String(), "scenario,load,policy,metric,mean,ci95\n") {
		t.Errorf("csv header wrong:\n%s", csvOut.String())
	}
}

// TestRunSeedOverrideChangesResults pins that the base seed flows into the
// per-cell derivation.
func TestRunSeedOverrideChangesResults(t *testing.T) {
	s := specJSON(t, `{
		"version": 1, "name": "t", "policy": "sjf",
		"workload": {"class": "syn", "jobs": 10}
	}`)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) float64 {
		rep, err := Run(context.Background(), s, cells, Options{Seed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cells[0].Metrics[MetricMeanResponse].Mean
	}
	if run(1) == run(2) {
		t.Error("different base seeds produced identical results")
	}
	if run(3) != run(3) {
		t.Error("same base seed produced different results")
	}
}

func TestRunPortfolioPolicy(t *testing.T) {
	s := specJSON(t, `{
		"version": 1, "name": "pf", "policy": "portfolio",
		"workload": {"class": "syn", "jobs": 30},
		"cluster": {"machines": 4}
	}`)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), s, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cell := rep.Cells[0]
	for _, want := range []string{MetricMeanResponse, MetricMeanSlowdown, MetricWindows, MetricSelectionSims} {
		if _, ok := cell.Metrics[want]; !ok {
			t.Errorf("portfolio cell missing metric %s", want)
		}
	}
}

// TestRunTraceImport drives a scenario from a GWA CSV written via
// internal/trace, including load rescaling.
func TestRunTraceImport(t *testing.T) {
	dir := t.TempDir()
	gen := workload.StandardGenerator(workload.ClassSynthetic)
	tr := gen.Generate(15, newRand(5))
	var buf bytes.Buffer
	if err := trace.WriteJobs(&buf, tr); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "jobs.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "spec.json")
	spec := map[string]any{
		"version":  1,
		"name":     "imported",
		"workload": map[string]any{"trace": "jobs.csv", "load": 0.7},
		"policy":   "fcfs",
	}
	raw, _ := json.Marshal(spec)
	if err := os.WriteFile(specPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Load(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("trace spec invalid: %v", err)
	}
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), s, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jobs := rep.Cells[0].Metrics[MetricJobs].Mean; jobs != 15 {
		t.Errorf("imported trace ran %v jobs, want 15", jobs)
	}
}

// TestScaleToLoad pins the offered-load arithmetic.
func TestScaleToLoad(t *testing.T) {
	tr := &workload.Trace{Jobs: []*workload.Job{
		{ID: 1, Submit: 0, Tasks: []workload.Task{{ID: 1, JobID: 1, CPUs: 2, Runtime: 50}}},
		{ID: 2, Submit: 100, Tasks: []workload.Task{{ID: 2, JobID: 2, CPUs: 2, Runtime: 50}}},
	}}
	// work = 200 CPU-seconds over 8 cores: load 0.5 needs span 50.
	scaleToLoad(tr, 0.5, 8)
	if got := tr.Span(); got != 50 {
		t.Errorf("span after scaling = %v, want 50", got)
	}
	work := 0.0
	for _, j := range tr.Jobs {
		work += j.TotalWork()
	}
	span := float64(tr.Span())
	if load := work / (8 * span); load != 0.5 {
		t.Errorf("offered load = %v, want 0.5", load)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestValidateRejectsTraceWithClassSweep pins that an imported trace cannot
// be silently discarded by a class axis.
func TestValidateRejectsTraceWithClassSweep(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "jobs.csv")
	var buf bytes.Buffer
	if err := trace.WriteJobs(&buf, workload.StandardGenerator(workload.ClassSynthetic).Generate(3, newRand(1))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s := specJSON(t, `{
		"version": 1, "name": "t", "policy": "sjf",
		"workload": {"trace": `+fmt.Sprintf("%q", tracePath)+`},
		"sweep": {"class": ["sci", "bd"]}
	}`)
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive with sweeping") {
		t.Fatalf("trace + class sweep accepted: %v", err)
	}
}

// TestValidateRejectsTraceWithGeneratorSettings pins that generator-only
// settings and axes cannot silently no-op alongside an imported trace.
func TestValidateRejectsTraceWithGeneratorSettings(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "jobs.csv")
	var buf bytes.Buffer
	if err := trace.WriteJobs(&buf, workload.StandardGenerator(workload.ClassSynthetic).Generate(3, newRand(1))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s := specJSON(t, `{
		"version": 1, "name": "t", "policy": "sjf",
		"workload": {"trace": `+fmt.Sprintf("%q", tracePath)+`, "jobs": 50,
			"arrival": {"process": "poisson"}},
		"sweep": {"arrival": ["poisson", "flashcrowd"], "jobs": [10, 20]}
	}`)
	err := s.Validate()
	if err == nil {
		t.Fatal("trace + generator settings accepted")
	}
	for _, want := range []string{
		"trace and arrival are mutually exclusive",
		"trace and jobs are mutually exclusive",
		"sweeping over arrival",
		"sweeping over jobs",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
}

// TestValidateRejectsAliasDuplicates pins that duplicate detection compares
// resolved values, so alias spellings of one configuration collide.
func TestValidateRejectsAliasDuplicates(t *testing.T) {
	cases := []string{
		`{"version": 1, "name": "t", "policy": "sjf",
		  "workload": {"class": "syn", "jobs": 5},
		  "sweep": {"class": ["sci", "scientific"]}}`,
		`{"version": 1, "name": "t",
		  "workload": {"class": "syn", "jobs": 5},
		  "sweep": {"policy": ["easy-bf", "EASYBF"]}}`,
		`{"version": 1, "name": "t", "policy": "sjf",
		  "workload": {"class": "syn", "jobs": 5},
		  "sweep": {"kind": ["CL", "cluster"]}}`,
	}
	for i, src := range cases {
		err := specJSON(t, src).Validate()
		if err == nil || !strings.Contains(err.Error(), "duplicate value") {
			t.Errorf("case %d: alias duplicate accepted: %v", i, err)
		}
	}
}

// TestValidateRejectsPortfolioOnlyObjective pins that an objective the
// configured policy never emits is rejected instead of silently disabling
// best-cell highlighting.
func TestValidateRejectsPortfolioOnlyObjective(t *testing.T) {
	s := specJSON(t, `{
		"version": 1, "name": "t", "policy": "portfolio",
		"objective": "utilization",
		"workload": {"class": "syn", "jobs": 5}
	}`)
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), `policy "portfolio" does not emit "utilization"`) {
		t.Fatalf("portfolio with simulator-only objective accepted: %v", err)
	}
	// Mixed sweeps are held to the intersection too.
	s = specJSON(t, `{
		"version": 1, "name": "t",
		"objective": "utilization",
		"workload": {"class": "syn", "jobs": 5},
		"sweep": {"policy": ["sjf", "portfolio"]}
	}`)
	if err := s.Validate(); err == nil {
		t.Fatal("mixed sweep with portfolio-incompatible objective accepted")
	}
	// windows is portfolio-only: a static policy must reject it.
	s = specJSON(t, `{
		"version": 1, "name": "t", "policy": "sjf",
		"objective": "windows",
		"workload": {"class": "syn", "jobs": 5}
	}`)
	if err := s.Validate(); err == nil {
		t.Fatal("static policy with portfolio-only objective accepted")
	}
}

// TestPolicyCellsSharePairedWorkloads pins the common-random-numbers design:
// cells that differ only in policy see the identical generated job set, so
// their jobs/makespan-independent workload facts agree. FCFS and SJF on the
// same trace must report the same job count, and the workload IDs of the two
// cells must collide while their cell IDs do not.
func TestPolicyCellsSharePairedWorkloads(t *testing.T) {
	s := specJSON(t, `{
		"version": 1, "name": "t",
		"workload": {"class": "sci", "jobs": 15},
		"cluster": {"machines": 4},
		"sweep": {"policy": ["fcfs", "sjf"]}
	}`)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].ID() == cells[1].ID() {
		t.Fatal("cell IDs collide")
	}
	if cells[0].WorkloadID() != cells[1].WorkloadID() {
		t.Fatalf("workload IDs differ: %q vs %q", cells[0].WorkloadID(), cells[1].WorkloadID())
	}
	rep, err := Run(context.Background(), s, cells, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Same generated workload => identical total response-time *sums* would
	// require equal scheduling; but per-job critical paths are fixed, so the
	// count and the per-replica workload-derived values line up exactly.
	a := rep.Cells[0].Metrics[MetricJobs]
	b := rep.Cells[1].Metrics[MetricJobs]
	if a.Mean != b.Mean {
		t.Errorf("paired cells saw different job counts: %v vs %v", a.Mean, b.Mean)
	}
	// A jobs sweep, by contrast, must produce distinct workload IDs.
	s2 := specJSON(t, `{
		"version": 1, "name": "t", "policy": "sjf",
		"workload": {"class": "sci"},
		"sweep": {"jobs": [10, 20]}
	}`)
	cells2, err := Expand(s2)
	if err != nil {
		t.Fatal(err)
	}
	if cells2[0].WorkloadID() == cells2[1].WorkloadID() {
		t.Error("jobs axis should change the workload ID")
	}
}

// TestObjectiveUsesSweptPoliciesNotBase pins that a swept policy axis
// overrides the base policy for objective checking, and that "portfolio"
// resolves case-insensitively like every other name.
func TestObjectiveUsesSweptPoliciesNotBase(t *testing.T) {
	// Base is portfolio but every cell runs a static policy: utilization OK.
	s := specJSON(t, `{
		"version": 1, "name": "t", "policy": "portfolio",
		"objective": "utilization",
		"workload": {"class": "syn", "jobs": 5},
		"sweep": {"policy": ["sjf", "fcfs"]}
	}`)
	if err := s.Validate(); err != nil {
		t.Errorf("swept static policies should allow utilization: %v", err)
	}
	if err := specJSON(t, `{
		"version": 1, "name": "t", "policy": "Portfolio",
		"workload": {"class": "syn", "jobs": 5}
	}`).Validate(); err != nil {
		t.Errorf(`"Portfolio" should resolve case-insensitively: %v`, err)
	}
	err := specJSON(t, `{
		"version": 1, "name": "t", "policy": "heft",
		"workload": {"class": "syn", "jobs": 5}
	}`).Validate()
	if err == nil || !strings.Contains(err.Error(), `or "portfolio"`) {
		t.Errorf("unknown-policy error should mention portfolio: %v", err)
	}
}
