package scenario

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// TestSweepGolden pins the committed example sweeps end to end, one golden
// per pinned domain: the JSON report at --replicas 3 must be byte-identical
// between --parallel 1 and --parallel 8, and byte-identical to the committed
// golden file. Regenerate with: go test ./internal/scenario -run
// TestSweepGolden -update
func TestSweepGolden(t *testing.T) {
	for _, name := range []string{"policy-vs-load", "autoscaler-vs-load"} {
		t.Run(name, func(t *testing.T) {
			specPath := filepath.Join("..", "..", "examples", "scenarios", name+".json")
			goldenPath := filepath.Join("testdata", name+".golden.json")

			spec, err := Load(specPath)
			if err != nil {
				t.Fatal(err)
			}
			cells, err := Expand(spec)
			if err != nil {
				t.Fatal(err)
			}

			render := func(parallel int) []byte {
				rep, err := Run(context.Background(), spec, cells, Options{Replicas: 3, Parallelism: parallel})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := rep.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}

			seq := render(1)
			par := render(8)
			if !bytes.Equal(seq, par) {
				t.Fatal("sweep report differs between --parallel 1 and --parallel 8")
			}

			if *updateGolden {
				if err := os.WriteFile(goldenPath, seq, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d bytes)", goldenPath, len(seq))
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(seq, want) {
				t.Errorf("sweep report deviates from %s (%d vs %d bytes); regenerate with -update if the change is intended",
					goldenPath, len(seq), len(want))
			}
		})
	}
}
