package scenario

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// TestV1SpecAutoUpgrades pins the schema migration: a version-1 spec (the
// pre-domain schema) parses as a version-2 spec with domain "sched" and
// validates and runs unchanged.
func TestV1SpecAutoUpgrades(t *testing.T) {
	s := specJSON(t, `{
		"version": 1, "name": "legacy", "policy": "sjf",
		"workload": {"class": "syn", "jobs": 5}
	}`)
	if s.Version != SpecVersion {
		t.Errorf("Version = %d after parse, want %d", s.Version, SpecVersion)
	}
	if s.Domain != "sched" {
		t.Errorf("Domain = %q after parse, want \"sched\"", s.Domain)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("upgraded v1 spec invalid: %v", err)
	}
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), s, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpecVersion != SpecVersion || rep.Domain != "sched" {
		t.Errorf("report header = v%d/%q, want v%d/sched", rep.SpecVersion, rep.Domain, SpecVersion)
	}
}

// TestV1SpecWithExplicitDomainKept pins that a version-1 spec that already
// names a domain keeps it through the upgrade.
func TestV1SpecWithExplicitDomainKept(t *testing.T) {
	s := specJSON(t, `{
		"version": 1, "name": "t", "domain": "mmog",
		"mmog": {"partitioner": "aos"}
	}`)
	if s.Domain != "mmog" || s.Version != SpecVersion {
		t.Errorf("upgrade mangled explicit domain: v%d %q", s.Version, s.Domain)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("v1+domain spec invalid: %v", err)
	}
}

// TestValidateUnknownAndMissingDomain pins the domain-resolution errors:
// both name the known domains so the fix is obvious, and the remaining
// generic problems are still reported in the same pass.
func TestValidateUnknownAndMissingDomain(t *testing.T) {
	err := specJSON(t, `{
		"version": 2, "name": "t", "domain": "serverless",
		"replicas": -2
	}`).Validate()
	if err == nil {
		t.Fatal("unknown domain accepted")
	}
	for _, want := range []string{
		`unknown domain "serverless"`,
		"known: autoscale, mmog, sched",
		"replicas: got -2",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-domain error missing %q: %v", want, err)
		}
	}

	err = specJSON(t, `{"version": 2, "name": "t"}`).Validate()
	if err == nil {
		t.Fatal("missing domain accepted")
	}
	for _, want := range []string{
		"domain: required",
		"known: autoscale, mmog, sched",
		`version-1 specs imply "sched"`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing-domain error missing %q: %v", want, err)
		}
	}
}

// TestDomainRegistryCollisions pins the registry's name hygiene: duplicate
// (case-insensitive) and empty names are rejected.
func TestDomainRegistryCollisions(t *testing.T) {
	if err := RegisterDomain(fakeDomain{name: "sched"}); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate domain accepted: %v", err)
	}
	if err := RegisterDomain(fakeDomain{name: "SCHED"}); err == nil {
		t.Error("case-variant duplicate domain accepted")
	}
	if err := RegisterDomain(fakeDomain{name: "  "}); err == nil {
		t.Error("blank domain name accepted")
	}
	if _, err := DomainByName("Sched"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	names := DomainNames()
	if len(names) != 3 || names[0] != "autoscale" || names[1] != "mmog" || names[2] != "sched" {
		t.Errorf("DomainNames = %v", names)
	}
}

// fakeDomain is a minimal Domain for registry tests.
type fakeDomain struct{ name string }

func (f fakeDomain) Name() string                                     { return f.name }
func (fakeDomain) Axes() map[string]AxisDef                           { return nil }
func (fakeDomain) Metrics() []MetricDef                               { return nil }
func (fakeDomain) DefaultObjective() string                           { return "" }
func (fakeDomain) Validate(*Spec, func(string, ...any))               {}
func (fakeDomain) Run(*Scenario, int64, int64) ([]MetricValue, error) { return nil, nil }

// TestValidateRejectsForeignSections pins that a spec cannot smuggle one
// domain's parameters into another (they would be silently ignored).
func TestValidateRejectsForeignSections(t *testing.T) {
	err := specJSON(t, `{
		"version": 2, "name": "t", "domain": "sched", "policy": "sjf",
		"workload": {"class": "syn", "jobs": 5},
		"mmog": {"partitioner": "aos"},
		"autoscale": {"autoscaler": "React"}
	}`).Validate()
	if err == nil {
		t.Fatal("sched spec with mmog+autoscale sections accepted")
	}
	for _, want := range []string{"mmog: not used by domain sched", "autoscale: not used by domain sched"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}

	err = specJSON(t, `{
		"version": 2, "name": "t", "domain": "mmog",
		"mmog": {"partitioner": "aos"},
		"policy": "sjf",
		"workload": {"class": "syn"}
	}`).Validate()
	if err == nil {
		t.Fatal("mmog spec with policy+workload accepted")
	}
	for _, want := range []string{"policy: not used by domain mmog", "workload: not used by domain mmog"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
}

// TestAutoscaleDomainValidation pins the autoscale domain's all-problems
// validation: unknown autoscaler, unknown engine, bad numerics, and unknown
// axes in one pass.
func TestAutoscaleDomainValidation(t *testing.T) {
	err := specJSON(t, `{
		"version": 2, "name": "t", "domain": "autoscale",
		"workload": {"class": "syn", "jobs": 5},
		"autoscale": {"autoscaler": "Nessie", "engine": "in-virtuo",
			"boot_delay_s": -3, "max_cores": -1},
		"sweep": {"policy": ["sjf"], "boot_delay": [-2], "autoscaler": ["React", "react"]}
	}`).Validate()
	if err == nil {
		t.Fatal("malformed autoscale spec accepted")
	}
	for _, want := range []string{
		`autoscale.autoscaler: autoscale: unknown autoscaler "Nessie"`,
		"autoscale.engine:",
		"autoscale.boot_delay_s: got -3",
		"autoscale.max_cores: got -1",
		"sweep.policy: unknown axis (domain autoscale sweeps:",
		"sweep.boot_delay[0]:",
		"sweep.autoscaler[1]: duplicate value react",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}

	// A valid sweep without a base autoscaler is fine (swept axis).
	if err := specJSON(t, `{
		"version": 2, "name": "t", "domain": "autoscale",
		"workload": {"class": "sci", "jobs": 8},
		"sweep": {"autoscaler": ["React", "Plan"]}
	}`).Validate(); err != nil {
		t.Errorf("valid autoscale sweep rejected: %v", err)
	}
}

// TestMMOGDomainValidation pins the mmog domain's validation.
func TestMMOGDomainValidation(t *testing.T) {
	err := specJSON(t, `{
		"version": 2, "name": "t", "domain": "mmog",
		"mmog": {"partitioner": "voronoi", "servers": -1, "offload": 2},
		"sweep": {"class": ["sci"], "offload": [0.95]}
	}`).Validate()
	if err == nil {
		t.Fatal("malformed mmog spec accepted")
	}
	for _, want := range []string{
		`mmog.partitioner: mmog: unknown partitioner "voronoi"`,
		"mmog.servers: got -1",
		"mmog.offload: got 2",
		"sweep.class: unknown axis (domain mmog sweeps:",
		"sweep.offload[0]: got 0.95",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

// TestAutoscaleSweepRunsAndPairsWorkloads runs a small autoscale sweep end
// to end: byte-identical across parallelism, and cells differing only in
// autoscaler share the workload seed (CRN pairing) so they face the same
// generated job set.
func TestAutoscaleSweepRunsAndPairsWorkloads(t *testing.T) {
	s := specJSON(t, `{
		"version": 2, "name": "as", "domain": "autoscale",
		"workload": {"class": "sci", "jobs": 6},
		"autoscale": {"max_cores": 64},
		"replicas": 2,
		"sweep": {"autoscaler": ["React", "Plan"]}
	}`)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].WorkloadID() != cells[1].WorkloadID() {
		t.Errorf("autoscaler cells should share workloads: %q vs %q",
			cells[0].WorkloadID(), cells[1].WorkloadID())
	}
	var outs []string
	for _, par := range []int{1, 8} {
		rep, err := Run(context.Background(), s, cells, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Error("autoscale sweep differs between --parallel 1 and --parallel 8")
	}
	rep, err := Run(context.Background(), s, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Domain != "autoscale" {
		t.Errorf("report domain = %q", rep.Domain)
	}
	for _, cell := range rep.Cells {
		jobs, ok := cell.Metrics[MetricJobs]
		if !ok || jobs.Mean != 6 {
			t.Errorf("cell %s jobs = %v, want 6", cell.ID, jobs.Mean)
		}
		if _, ok := cell.Metrics[MetricAccuracyUnder]; !ok {
			t.Errorf("cell %s missing elasticity metrics", cell.ID)
		}
	}
}

// TestMMOGSweepRunsDeterministically runs the mmog example sweep shape end
// to end and pins CRN pairing across partitioners.
func TestMMOGSweepRunsDeterministically(t *testing.T) {
	s := specJSON(t, `{
		"version": 2, "name": "worlds", "domain": "mmog",
		"mmog": {"entities": 150, "ticks": 5},
		"objective": "mean_max_load",
		"sweep": {"partitioner": ["zones", "aos"], "servers": [4, 8]}
	}`)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	// All cells share one generated world per replica.
	for _, c := range cells[1:] {
		if c.WorkloadID() != cells[0].WorkloadID() {
			t.Errorf("world not paired: %q vs %q", c.WorkloadID(), cells[0].WorkloadID())
		}
	}
	var outs []string
	for _, par := range []int{1, 8} {
		rep, err := Run(context.Background(), s, cells, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Error("mmog sweep differs between --parallel 1 and --parallel 8")
	}
	rep, err := Run(context.Background(), s, cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Identical worlds: entity counts agree across all cells; with 16 POIs
	// of load on 4 vs 8 servers, more servers must not raise the mean
	// hottest-server load.
	for _, cell := range rep.Cells {
		if ent := cell.Metrics[MetricEntities]; ent.Mean != 150 {
			t.Errorf("cell %s entities = %v, want 150", cell.ID, ent.Mean)
		}
	}
	if rep.BestCell == "" {
		t.Error("no best cell in a 4-cell mmog sweep")
	}
}

// TestCommittedDomainSpecsValidate keeps the shipped example specs runnable:
// every spec in examples/scenarios must expand cleanly.
func TestCommittedDomainSpecsValidate(t *testing.T) {
	for _, name := range []string{
		"policy-vs-load.json",
		"flashcrowd-arrivals.json",
		"environment-shapes.json",
		"autoscaler-vs-load.json",
		"mmog-partitioners.json",
	} {
		spec, err := Load(filepath.Join("..", "..", "examples", "scenarios", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if _, err := Expand(spec); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestSentinelZeroRejectedInSweeps pins that the "0 means default" spec
// sentinels cannot be swept: a boot_delay=0 or offload=0 cell would silently
// run the engine default under a wrong label.
func TestSentinelZeroRejectedInSweeps(t *testing.T) {
	err := specJSON(t, `{
		"version": 2, "name": "t", "domain": "autoscale",
		"workload": {"class": "sci", "jobs": 5},
		"autoscale": {"autoscaler": "React"},
		"sweep": {"boot_delay": [0, 30]}
	}`).Validate()
	if err == nil || !strings.Contains(err.Error(), "sweep.boot_delay[0]: got 0") {
		t.Errorf("swept boot_delay=0 accepted: %v", err)
	}
	err = specJSON(t, `{
		"version": 2, "name": "t", "domain": "mmog",
		"mmog": {"partitioner": "mirror"},
		"sweep": {"offload": [0, 0.3]}
	}`).Validate()
	if err == nil || !strings.Contains(err.Error(), "sweep.offload[0]: got 0") {
		t.Errorf("swept offload=0 accepted: %v", err)
	}
}
