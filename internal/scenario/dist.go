package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"

	"atlarge"
	"atlarge/internal/dist"
	"atlarge/internal/exec"
)

// DistJobKind is the dist job kind under which sweep plans are built; the
// worker CLI registers WorkerBuilder under it.
const DistJobKind = "sweep"

// DistJob renders the spec as a distributable job document: the spec JSON
// (workload trace paths absolutized, since the worker has no spec directory
// to resolve against) plus the effective seed and replica count. Workers on
// other hosts must see the trace file at the same path (shared or copied
// filesystem); generated-workload specs carry everything on the wire.
func DistJob(s *Spec, seed int64, replicas int) (dist.Job, error) {
	// A fresh literal rather than *s: Spec embeds the trace-memo sync.Once,
	// which must not be copied.
	c := Spec{
		Version:   s.Version,
		Name:      s.Name,
		Domain:    s.Domain,
		Workload:  s.Workload,
		Cluster:   s.Cluster,
		Policy:    s.Policy,
		Autoscale: s.Autoscale,
		MMOG:      s.MMOG,
		Replicas:  s.Replicas,
		Seed:      s.Seed,
		Objective: s.Objective,
		Sweep:     s.Sweep,
	}
	if c.Workload.Trace != "" {
		abs, err := filepath.Abs(s.tracePath())
		if err != nil {
			return dist.Job{}, fmt.Errorf("scenario: resolve trace path: %w", err)
		}
		c.Workload.Trace = abs
	}
	raw, err := json.Marshal(&c)
	if err != nil {
		return dist.Job{}, fmt.Errorf("scenario: marshal spec: %w", err)
	}
	return dist.Job{Kind: DistJobKind, Spec: raw, Seed: seed, Replicas: replicas}, nil
}

// WorkerBuilder returns the dist plan builder for sweep jobs: parse the job's
// spec, expand it, and lay out one task per (cell, replica) — the identical
// IDs, order, and derived seeds Run uses, so task indices mean the same
// (cell, replica) on the worker as on the dispatcher. Task results are the
// cell's metric values as JSON, the exact bytes the checkpoint store and the
// dispatcher-side aggregation both consume.
func WorkerBuilder() dist.Builder {
	return func(j dist.Job) (*exec.Plan[json.RawMessage], error) {
		s, err := Parse(bytes.NewReader(j.Spec))
		if err != nil {
			return nil, err
		}
		if j.Replicas <= 0 {
			return nil, fmt.Errorf("scenario: job replicas must be positive, got %d", j.Replicas)
		}
		cells, err := Expand(s)
		if err != nil {
			return nil, err
		}
		plan := &exec.Plan[json.RawMessage]{}
		for i := range cells {
			sc := &cells[i]
			for rep := 0; rep < j.Replicas; rep++ {
				workloadSeed := atlarge.DeriveSeed(j.Seed, sc.WorkloadID(), rep)
				simSeed := atlarge.DeriveSeed(j.Seed, sc.ID(), rep)
				plan.Add(sc.ID()+"#"+strconv.Itoa(rep), func(context.Context) (json.RawMessage, error) {
					ms, err := sc.domain.Run(sc, workloadSeed, simSeed)
					if err != nil {
						return nil, err
					}
					return json.Marshal(ms)
				})
			}
		}
		return plan, nil
	}
}

// Distribute switches a run onto remote workers: it describes the sweep as a
// dist job (using the same seed/replica resolution Run will apply to opt)
// and installs a dispatcher over the dialed clients as opt.Stream. Everything
// else about Run — positional aggregation, checkpoint cache, progress,
// failure reporting — is unchanged, which is why the report bytes are too.
func Distribute(opt *Options, s *Spec, clients []*dist.Client, dstats *dist.Stats) error {
	seed, replicas := Effective(s, *opt)
	job, err := DistJob(s, seed, replicas)
	if err != nil {
		return err
	}
	d, err := dist.NewDispatcher[[]MetricValue](clients, dist.DispatchOptions{
		Job:      job,
		Parallel: opt.Parallelism,
		Stats:    dstats,
	})
	if err != nil {
		return err
	}
	opt.Stream = d.Stream
	return nil
}
