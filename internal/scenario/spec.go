// Package scenario is the declarative what-if engine of the AtLarge
// reproduction: a versioned JSON specification names a simulation domain
// (cluster scheduling, autoscaling, MMOG worlds — see Domain), the domain's
// parameters, and the workload under study; a sweep expander turns axis
// lists into the cross-product of concrete scenarios; execution fans the
// expanded set out over the parallel atlarge.Runner with deterministic
// per-(scenario, replica) seeds; and a report layer aggregates the results
// into comparative tables (mean ± 95% CI per cell, best-per-axis
// highlighting) in text, JSON, or CSV.
//
// The engine exists so that new design questions — "which policy wins on a
// bursty scientific workload as load grows?", "does a workflow-aware
// autoscaler pay off as load rises?", "how many servers does each world
// partitioner need?" — can be posed by writing a spec file instead of a new
// Go experiment (see examples/scenarios/). New simulators join by
// registering a Domain; the schema, sweeps, seeding discipline, and reports
// are shared.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"atlarge/internal/trace"
	"atlarge/internal/workload"
)

// SpecVersion is the schema version this build writes. Version 1 specs (the
// schema before domains existed) are auto-upgraded on parse: they become
// version 2 specs with domain "sched".
const SpecVersion = 2

// Spec is one declarative what-if specification.
type Spec struct {
	// Version is the schema version; must equal SpecVersion (version 1
	// specs auto-upgrade on parse).
	Version int `json:"version"`
	// Name identifies the scenario family in reports and cell IDs.
	Name string `json:"name"`
	// Domain names the registered simulation domain (see DomainNames);
	// version-1 specs upgrade to "sched".
	Domain string `json:"domain,omitempty"`
	// Workload names the workload under study (sched and autoscale
	// domains).
	Workload WorkloadSpec `json:"workload,omitempty"`
	// Cluster names the execution environment shape (sched domain).
	Cluster ClusterSpec `json:"cluster,omitempty"`
	// Policy is the scheduling policy (see sched.PolicyNames) or
	// "portfolio" for the portfolio scheduler over the default policy set
	// (sched domain).
	Policy string `json:"policy,omitempty"`
	// Autoscale parameterizes the autoscale domain.
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	// MMOG parameterizes the mmog domain.
	MMOG *MMOGSpec `json:"mmog,omitempty"`
	// Replicas is the default replica count (CLI --replicas overrides);
	// 0 means 1.
	Replicas int `json:"replicas,omitempty"`
	// Seed is the base seed for per-(scenario, replica) seed derivation
	// (CLI --seed overrides).
	Seed int64 `json:"seed,omitempty"`
	// Objective selects the metric used for best-cell highlighting;
	// empty means the domain's default.
	Objective string `json:"objective,omitempty"`
	// Sweep maps axis names to value lists; the cross-product over the
	// axes (in lexicographic axis-name order) is the set of concrete
	// scenarios. The accepted axes are the domain's (see Domain.Axes).
	Sweep map[string][]any `json:"sweep,omitempty"`

	// dir is the directory the spec was loaded from, for resolving
	// relative trace paths; empty when parsed from a reader.
	dir string
	// traceOnce/traceCache/traceErr memoize the parsed workload trace, so
	// a sweep of N cells × R replicas reads and parses the file once; each
	// run gets a deep copy (load rescaling mutates submission times).
	traceOnce  sync.Once
	traceCache *workload.Trace
	traceErr   error
}

// WorkloadSpec names a workload: either a generated class or a GWA trace.
type WorkloadSpec struct {
	// Class is a Table 9 workload class (see workload.ClassNames).
	// Mutually exclusive with Trace.
	Class string `json:"class,omitempty"`
	// Jobs is the number of generated jobs; 0 means 100. Ignored with
	// Trace.
	Jobs int `json:"jobs,omitempty"`
	// Arrival overrides the class's calibrated arrival process.
	Arrival *ArrivalSpec `json:"arrival,omitempty"`
	// Trace imports a GWA-style CSV job trace (trace.ReadJobs) instead of
	// generating; relative paths resolve against the spec file location.
	Trace string `json:"trace,omitempty"`
	// Load, when positive, rescales submission times so the offered load
	// (total CPU-seconds ÷ (cores × submission span)) hits this target.
	Load float64 `json:"load,omitempty"`
	// Clients, when positive, streams the workload from a Population of
	// that many heterogeneous clients — per-client RNG streams, optional
	// rate skew — with the class calibrating every client. Mutually
	// exclusive with Trace.
	Clients int `json:"clients,omitempty"`
	// Skew names the per-client rate skew for populations: "none", "zipf",
	// or "lognormal" (see workload.SkewNames). Requires Clients.
	Skew string `json:"skew,omitempty"`
}

// ArrivalSpec names an arrival process with optional parameter overrides.
type ArrivalSpec struct {
	// Process is an arrival family name (see workload.ArrivalNames).
	Process string `json:"process"`
	// Params overrides family defaults ("rate", "k", "spike", ...).
	Params map[string]float64 `json:"params,omitempty"`
}

// ClusterSpec names an environment shape.
type ClusterSpec struct {
	// Kind is a Table 9 environment kind (see cluster.KindNames);
	// empty means CL.
	Kind string `json:"kind,omitempty"`
	// Sites/Machines/Cores override the shape; all zero means the
	// calibrated cluster.StandardEnvironment for the kind. A partial
	// override fills the unset dimensions from the kind's standard shape.
	Sites    int `json:"sites,omitempty"`
	Machines int `json:"machines,omitempty"`
	Cores    int `json:"cores,omitempty"`
}

// AutoscaleSpec parameterizes the autoscale domain: which autoscaler runs
// the workload under which elasticity engine.
type AutoscaleSpec struct {
	// Autoscaler names the policy under study (see autoscale §6.7
	// catalog: React, Adapt, Hist, Reg, ConPaaS, Plan, Token). Required
	// unless the autoscaler axis is swept.
	Autoscaler string `json:"autoscaler,omitempty"`
	// Engine is the evaluation technique: "in-vitro" (fine-grained,
	// default) or "in-silico" (coarse fluid).
	Engine string `json:"engine,omitempty"`
	// BootDelay is the VM provisioning latency in seconds; 0 means 60.
	BootDelay float64 `json:"boot_delay_s,omitempty"`
	// EvalInterval is the autoscaler period in seconds; 0 means 30.
	EvalInterval float64 `json:"eval_interval_s,omitempty"`
	// MaxCores caps provider capacity (also the core count used for
	// offered-load rescaling); 0 means 512.
	MaxCores int `json:"max_cores,omitempty"`
	// CorePerVM is the VM granularity; 0 means 4.
	CorePerVM int `json:"core_per_vm,omitempty"`
}

// MMOGSpec parameterizes the mmog domain: an event-driven virtual world
// split across game servers by a partitioning technique.
type MMOGSpec struct {
	// Partitioner names the technique (see mmog.PartitionerNames: zones,
	// area-of-simulation, mirror). Required unless swept.
	Partitioner string `json:"partitioner,omitempty"`
	// Servers is the game-server count; 0 means 8.
	Servers int `json:"servers,omitempty"`
	// Entities is the world population; 0 means 400.
	Entities int `json:"entities,omitempty"`
	// Ticks is the number of simulated world ticks; 0 means 60.
	Ticks int `json:"ticks,omitempty"`
	// Offload is the mirror technique's offload fraction; 0 means 0.5.
	Offload float64 `json:"offload,omitempty"`
}

// PolicyPortfolio is the Policy value that selects the portfolio scheduler.
const PolicyPortfolio = "portfolio"

// Parse decodes a spec from r. Unknown fields are rejected so typos in spec
// files surface as errors instead of silently-ignored settings. Version-1
// specs are upgraded in place to version 2 with domain "sched".
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	s.upgrade()
	return &s, nil
}

// upgrade lifts a version-1 spec (the pre-domain schema) to version 2: the
// only v1 simulator was the cluster scheduler, so the domain is "sched".
func (s *Spec) upgrade() {
	if s.Version == 1 {
		s.Version = 2
		if s.Domain == "" {
			s.Domain = "sched"
		}
	}
}

// Load reads and parses a spec file. Relative workload trace paths resolve
// against the file's directory.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	s.dir = filepath.Dir(path)
	return s, nil
}

// tracePath resolves the workload trace path against the spec location.
func (s *Spec) tracePath() string {
	if s.Workload.Trace == "" || filepath.IsAbs(s.Workload.Trace) || s.dir == "" {
		return s.Workload.Trace
	}
	return filepath.Join(s.dir, s.Workload.Trace)
}

// domainImpl resolves the spec's domain from the registry.
func (s *Spec) domainImpl() (Domain, error) {
	if s.Domain == "" {
		return nil, fmt.Errorf("scenario: spec %q has no domain (known: %s; version-1 specs imply %q)",
			s.Name, strings.Join(DomainNames(), ", "), "sched")
	}
	return DomainByName(s.Domain)
}

// objective returns the highlight metric, defaulted per domain.
func (s *Spec) objective(d Domain) string {
	if s.Objective == "" {
		return d.DefaultObjective()
	}
	return s.Objective
}

// Validate checks the whole spec — base fields, the domain's parameters,
// every sweep axis, and every swept value — and reports every problem it
// finds as one joined error, so a malformed spec can be fixed in a single
// pass.
func (s *Spec) Validate() error {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if s.Version != SpecVersion {
		bad("version: got %d, this build supports version %d (and auto-upgrades version 1)",
			s.Version, SpecVersion)
	}
	if s.Name == "" {
		bad(`name: required (used in report headers and scenario IDs, e.g. "policy-vs-load")`)
	}
	if s.Replicas < 0 {
		bad("replicas: got %d, must be >= 0 (0 means 1)", s.Replicas)
	}

	d, err := s.domainImpl()
	if err != nil {
		// Without a resolvable domain no axis catalog or metric set exists;
		// the remaining checks would only produce misleading noise.
		if s.Domain == "" {
			bad("domain: required (known: %s; version-1 specs imply %q)",
				strings.Join(DomainNames(), ", "), "sched")
		} else {
			bad("domain: %v", errTrimPrefix(err))
		}
	} else {
		d.Validate(s, bad)
		s.validateObjective(d, bad)
		s.validateSweep(d, bad)
	}

	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("scenario: invalid spec %q:\n  - %s", s.Name, strings.Join(problems, "\n  - "))
}

// errTrimPrefix drops the "scenario: " prefix when nesting registry errors
// inside a validation problem list.
func errTrimPrefix(err error) string {
	return strings.TrimPrefix(err.Error(), "scenario: ")
}

// validateObjective checks the highlight metric against the domain's metric
// catalog; domains add their own refinements (e.g. per-policy emission) in
// Domain.Validate.
func (s *Spec) validateObjective(d Domain, bad func(string, ...any)) {
	obj := s.objective(d)
	if !domainMetric(d, obj) {
		bad("objective: unknown metric %q (domain %s emits: %s)",
			obj, d.Name(), strings.Join(metricNames(d), ", "))
	}
}

// rejectSection reports domain-foreign spec sections, so parameters of one
// simulator cannot be silently ignored by another.
func rejectSection(set bool, section, domain string, bad func(string, ...any)) {
	if set {
		bad("%s: not used by domain %s; remove it", section, domain)
	}
}

// defaultJobs is the generated job count when the spec leaves it unset.
const defaultJobs = 100

// validateWorkloadSpec checks the shared workload section (used by the sched
// and autoscale domains).
func (s *Spec) validateWorkloadSpec(bad func(string, ...any)) {
	w := s.Workload
	swept := func(axis string) bool { _, ok := s.Sweep[axis]; return ok }
	switch {
	case w.Trace != "" && w.Class != "":
		bad("workload: class and trace are mutually exclusive; set exactly one")
	case w.Trace == "" && w.Class == "" && !swept("class"):
		bad("workload: set class (known: %s) or trace (GWA CSV path), or sweep over class",
			strings.Join(workload.ClassNames(), ", "))
	}
	if w.Trace != "" {
		// An imported trace fixes the job set: generator settings would be
		// silently ignored, and sweeping them would compare identical cells.
		if w.Arrival != nil {
			bad("workload: trace and arrival are mutually exclusive (the trace fixes the arrivals)")
		}
		if w.Jobs != 0 {
			bad("workload: trace and jobs are mutually exclusive (the trace fixes the job count)")
		}
		if w.Clients != 0 {
			bad("workload: trace and clients are mutually exclusive (the trace fixes the job set)")
		}
		if w.Skew != "" {
			bad("workload: trace and skew are mutually exclusive (the trace fixes the job set)")
		}
		for _, axis := range []string{"class", "arrival", "jobs", "clients", "skew"} {
			if swept(axis) {
				bad("workload: trace is mutually exclusive with sweeping over %s; drop one", axis)
			}
		}
	}
	if w.Class != "" {
		if _, err := workload.ClassByName(w.Class); err != nil {
			bad("workload.class: %v", err)
		}
	}
	if w.Trace != "" {
		if _, err := os.Stat(s.tracePath()); err != nil {
			bad("workload.trace: %v", err)
		}
	}
	if w.Jobs < 0 {
		bad("workload.jobs: got %d, must be >= 0 (0 means %d)", w.Jobs, defaultJobs)
	}
	if w.Load < 0 {
		bad("workload.load: got %g, must be >= 0 (0 means arrivals as generated)", w.Load)
	}
	if w.Arrival != nil {
		if _, err := workload.ArrivalsByName(w.Arrival.Process, w.Arrival.Params); err != nil {
			bad("workload.arrival: %v", err)
		}
	}
	if w.Clients < 0 {
		bad("workload.clients: got %d, must be >= 0 (0 means the single-generator path)", w.Clients)
	}
	if w.Skew != "" {
		if _, err := workload.ParseSkew(w.Skew); err != nil {
			bad("workload.skew: %v", err)
		}
	}
	if w.Clients == 0 && !swept("clients") {
		if w.Skew != "" {
			bad("workload.skew requires clients > 0 (or sweeping over clients)")
		}
		if swept("skew") {
			bad("workload: sweeping over skew requires clients > 0 (or sweeping over clients)")
		}
	}
}

// loadTrace returns a fresh deep copy of the spec's GWA trace; the file is
// read and parsed once per spec, however many cells and replicas run it.
func (s *Spec) loadTrace() (*workload.Trace, error) {
	s.traceOnce.Do(func() {
		f, err := os.Open(s.tracePath())
		if err != nil {
			s.traceErr = fmt.Errorf("scenario: %w", err)
			return
		}
		defer f.Close()
		tr, err := trace.ReadJobs(f)
		if err != nil {
			s.traceErr = fmt.Errorf("scenario: %s: %w", s.tracePath(), err)
			return
		}
		s.traceCache = tr
	})
	if s.traceErr != nil {
		return nil, s.traceErr
	}
	return s.traceCache.Clone(), nil
}
