// Package scenario is the declarative what-if engine of the AtLarge
// reproduction: a versioned JSON specification names a workload (generated
// class or imported GWA trace), a cluster shape, and a scheduling policy; a
// sweep expander turns axis lists into the cross-product of concrete
// scenarios; execution fans the expanded set out over the parallel
// atlarge.Runner with deterministic per-(scenario, replica) seeds; and a
// report layer aggregates the results into comparative tables
// (mean ± 95% CI per cell, best-per-axis highlighting) in text, JSON, or CSV.
//
// The engine exists so that new design questions — "which policy wins on a
// bursty scientific workload as load grows?" — can be posed by writing a spec
// file instead of a new Go experiment (see examples/scenarios/).
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"atlarge/internal/cluster"
	"atlarge/internal/sched"
	"atlarge/internal/trace"
	"atlarge/internal/workload"
)

// SpecVersion is the schema version this build reads and writes.
const SpecVersion = 1

// Spec is one declarative what-if specification.
type Spec struct {
	// Version is the schema version; must equal SpecVersion.
	Version int `json:"version"`
	// Name identifies the scenario family in reports and cell IDs.
	Name string `json:"name"`
	// Workload names the workload under study.
	Workload WorkloadSpec `json:"workload"`
	// Cluster names the execution environment shape.
	Cluster ClusterSpec `json:"cluster"`
	// Policy is the scheduling policy (see sched.PolicyNames) or
	// "portfolio" for the portfolio scheduler over the default policy set.
	Policy string `json:"policy,omitempty"`
	// Replicas is the default replica count (CLI --replicas overrides);
	// 0 means 1.
	Replicas int `json:"replicas,omitempty"`
	// Seed is the base seed for per-(scenario, replica) seed derivation
	// (CLI --seed overrides).
	Seed int64 `json:"seed,omitempty"`
	// Objective selects the metric used for best-cell highlighting;
	// default "mean_response_s".
	Objective string `json:"objective,omitempty"`
	// Sweep maps axis names to value lists; the cross-product over the
	// axes (in lexicographic axis-name order) is the set of concrete
	// scenarios. See AxisNames for the accepted axes.
	Sweep map[string][]any `json:"sweep,omitempty"`

	// dir is the directory the spec was loaded from, for resolving
	// relative trace paths; empty when parsed from a reader.
	dir string
	// traceOnce/traceCache/traceErr memoize the parsed workload trace, so
	// a sweep of N cells × R replicas reads and parses the file once; each
	// run gets a deep copy (load rescaling mutates submission times).
	traceOnce  sync.Once
	traceCache *workload.Trace
	traceErr   error
}

// WorkloadSpec names a workload: either a generated class or a GWA trace.
type WorkloadSpec struct {
	// Class is a Table 9 workload class (see workload.ClassNames).
	// Mutually exclusive with Trace.
	Class string `json:"class,omitempty"`
	// Jobs is the number of generated jobs; 0 means 100. Ignored with
	// Trace.
	Jobs int `json:"jobs,omitempty"`
	// Arrival overrides the class's calibrated arrival process.
	Arrival *ArrivalSpec `json:"arrival,omitempty"`
	// Trace imports a GWA-style CSV job trace (trace.ReadJobs) instead of
	// generating; relative paths resolve against the spec file location.
	Trace string `json:"trace,omitempty"`
	// Load, when positive, rescales submission times so the offered load
	// (total CPU-seconds ÷ (cores × submission span)) hits this target.
	Load float64 `json:"load,omitempty"`
}

// ArrivalSpec names an arrival process with optional parameter overrides.
type ArrivalSpec struct {
	// Process is an arrival family name (see workload.ArrivalNames).
	Process string `json:"process"`
	// Params overrides family defaults ("rate", "k", "spike", ...).
	Params map[string]float64 `json:"params,omitempty"`
}

// ClusterSpec names an environment shape.
type ClusterSpec struct {
	// Kind is a Table 9 environment kind (see cluster.KindNames);
	// empty means CL.
	Kind string `json:"kind,omitempty"`
	// Sites/Machines/Cores override the shape; all zero means the
	// calibrated cluster.StandardEnvironment for the kind. A partial
	// override fills the unset dimensions from the kind's standard shape.
	Sites    int `json:"sites,omitempty"`
	Machines int `json:"machines,omitempty"`
	Cores    int `json:"cores,omitempty"`
}

// PolicyPortfolio is the Policy value that selects the portfolio scheduler.
const PolicyPortfolio = "portfolio"

// Parse decodes a spec from r. Unknown fields are rejected so typos in spec
// files surface as errors instead of silently-ignored settings.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	return &s, nil
}

// Load reads and parses a spec file. Relative workload trace paths resolve
// against the file's directory.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	s.dir = filepath.Dir(path)
	return s, nil
}

// tracePath resolves the workload trace path against the spec location.
func (s *Spec) tracePath() string {
	if s.Workload.Trace == "" || filepath.IsAbs(s.Workload.Trace) || s.dir == "" {
		return s.Workload.Trace
	}
	return filepath.Join(s.dir, s.Workload.Trace)
}

// objective returns the highlight metric, defaulted.
func (s *Spec) objective() string {
	if s.Objective == "" {
		return MetricMeanResponse
	}
	return s.Objective
}

// Validate checks the whole spec — base fields, every sweep axis, and every
// swept value — and reports every problem it finds as one joined error, so a
// malformed spec can be fixed in a single pass.
func (s *Spec) Validate() error {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if s.Version != SpecVersion {
		bad("version: got %d, this build supports version %d", s.Version, SpecVersion)
	}
	if s.Name == "" {
		bad(`name: required (used in report headers and scenario IDs, e.g. "policy-vs-load")`)
	}

	s.validateWorkload(bad)
	s.validateCluster(bad)
	s.validatePolicy(bad)

	if s.Replicas < 0 {
		bad("replicas: got %d, must be >= 0 (0 means 1)", s.Replicas)
	}
	s.validateObjective(bad)
	s.validateSweep(bad)

	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("scenario: invalid spec %q:\n  - %s", s.Name, strings.Join(problems, "\n  - "))
}

func (s *Spec) validateWorkload(bad func(string, ...any)) {
	w := s.Workload
	swept := func(axis string) bool { _, ok := s.Sweep[axis]; return ok }
	switch {
	case w.Trace != "" && w.Class != "":
		bad("workload: class and trace are mutually exclusive; set exactly one")
	case w.Trace == "" && w.Class == "" && !swept("class"):
		bad("workload: set class (known: %s) or trace (GWA CSV path), or sweep over class",
			strings.Join(workload.ClassNames(), ", "))
	}
	if w.Trace != "" {
		// An imported trace fixes the job set: generator settings would be
		// silently ignored, and sweeping them would compare identical cells.
		if w.Arrival != nil {
			bad("workload: trace and arrival are mutually exclusive (the trace fixes the arrivals)")
		}
		if w.Jobs != 0 {
			bad("workload: trace and jobs are mutually exclusive (the trace fixes the job count)")
		}
		for _, axis := range []string{"class", "arrival", "jobs"} {
			if swept(axis) {
				bad("workload: trace is mutually exclusive with sweeping over %s; drop one", axis)
			}
		}
	}
	if w.Class != "" {
		if _, err := workload.ClassByName(w.Class); err != nil {
			bad("workload.class: %v", err)
		}
	}
	if w.Trace != "" {
		if _, err := os.Stat(s.tracePath()); err != nil {
			bad("workload.trace: %v", err)
		}
	}
	if w.Jobs < 0 {
		bad("workload.jobs: got %d, must be >= 0 (0 means %d)", w.Jobs, defaultJobs)
	}
	if w.Load < 0 {
		bad("workload.load: got %g, must be >= 0 (0 means arrivals as generated)", w.Load)
	}
	if w.Arrival != nil {
		if _, err := workload.ArrivalsByName(w.Arrival.Process, w.Arrival.Params); err != nil {
			bad("workload.arrival: %v", err)
		}
	}
}

func (s *Spec) validateCluster(bad func(string, ...any)) {
	c := s.Cluster
	if c.Kind != "" {
		if _, err := cluster.KindByName(c.Kind); err != nil {
			bad("cluster.kind: %v", err)
		}
	}
	for _, dim := range []struct {
		name string
		v    int
	}{{"sites", c.Sites}, {"machines", c.Machines}, {"cores", c.Cores}} {
		if dim.v < 0 {
			bad("cluster.%s: got %d, must be >= 0 (0 means the kind's standard shape)", dim.name, dim.v)
		}
	}
}

func (s *Spec) validatePolicy(bad func(string, ...any)) {
	if s.Policy == "" {
		if _, ok := s.Sweep["policy"]; !ok {
			bad("policy: required unless swept (known: %s, or %q)",
				strings.Join(sched.PolicyNames(), ", "), PolicyPortfolio)
		}
		return
	}
	if err := validPolicy(s.Policy); err != nil {
		bad("policy: %v", err)
	}
}

// isPortfolio matches the portfolio policy name case-insensitively, like
// every other name lookup.
func isPortfolio(name string) bool { return strings.EqualFold(name, PolicyPortfolio) }

func validPolicy(name string) error {
	if isPortfolio(name) {
		return nil
	}
	if _, err := sched.PolicyByName(name); err != nil {
		return fmt.Errorf("unknown policy %q (known: %s, or %q)",
			name, strings.Join(sched.PolicyNames(), ", "), PolicyPortfolio)
	}
	return nil
}

// validateObjective checks the highlight metric exists and is emitted by
// every policy the spec runs — otherwise best-cell highlighting would
// silently produce nothing.
func (s *Spec) validateObjective(bad func(string, ...any)) {
	obj := s.objective()
	if !knownMetric(obj) {
		bad("objective: unknown metric %q (known: %s)", obj, strings.Join(MetricNames(), ", "))
		return
	}
	// Collect every (valid) policy some cell will actually run: the swept
	// values when the policy axis is swept (it overrides the base in every
	// cell), the base policy otherwise.
	policies := []string{}
	if swept, ok := s.Sweep["policy"]; ok {
		for _, v := range swept {
			if name, ok := v.(string); ok && validPolicy(name) == nil {
				policies = append(policies, name)
			}
		}
	} else if s.Policy != "" {
		policies = append(policies, s.Policy)
	}
	for _, p := range policies {
		emitted := simulatorMetrics
		if isPortfolio(p) {
			emitted = portfolioMetrics
		}
		if !emitted[obj] {
			names := make([]string, 0, len(emitted))
			for name := range emitted {
				names = append(names, name)
			}
			sort.Strings(names)
			bad("objective: policy %q does not emit %q (it emits: %s)", p, obj, strings.Join(names, ", "))
		}
	}
}

// defaultJobs is the generated job count when the spec leaves it unset.
const defaultJobs = 100

// loadTrace returns a fresh deep copy of the spec's GWA trace; the file is
// read and parsed once per spec, however many cells and replicas run it.
func (s *Spec) loadTrace() (*workload.Trace, error) {
	s.traceOnce.Do(func() {
		f, err := os.Open(s.tracePath())
		if err != nil {
			s.traceErr = fmt.Errorf("scenario: %w", err)
			return
		}
		defer f.Close()
		tr, err := trace.ReadJobs(f)
		if err != nil {
			s.traceErr = fmt.Errorf("scenario: %s: %w", s.tracePath(), err)
			return
		}
		s.traceCache = tr
	})
	if s.traceErr != nil {
		return nil, s.traceErr
	}
	return s.traceCache.Clone(), nil
}
