package scenario

import (
	"fmt"
	"sort"
	"strings"

	"atlarge"
)

// A Domain is one simulator opened to the declarative what-if engine: it
// names itself, declares its sweepable parameter axes and the metrics its
// runs emit, validates the domain-relevant parts of a spec, and executes one
// concrete scenario cell under a pair of derived seeds.
//
// Registering a Domain is all a new simulator needs to participate in
// scenario validate/run/sweep — the spec schema, sweep expander, parallel
// runner, seed pairing (common random numbers), and report layer are shared.
type Domain interface {
	// Name is the registry key, matched case-insensitively against the
	// spec's "domain" field.
	Name() string
	// Axes returns the sweepable dimensions of this domain by axis name.
	Axes() map[string]AxisDef
	// Metrics lists every metric a run of this domain may emit, with its
	// comparison direction for best-cell highlighting.
	Metrics() []MetricDef
	// DefaultObjective is the highlight metric used when the spec leaves
	// objective unset; it must appear in Metrics.
	DefaultObjective() string
	// Validate checks the domain-relevant base fields of the spec,
	// reporting every problem through bad (all-problems-at-once style).
	Validate(s *Spec, bad func(format string, args ...any))
	// Run executes one concrete cell. workloadSeed drives workload/world
	// generation and is shared by cells that differ only in non-generative
	// axes (paired comparisons); simSeed drives the simulation's own
	// randomness. The returned values become the cell's metric rows, in
	// emission order.
	Run(sc *Scenario, workloadSeed, simSeed int64) ([]MetricValue, error)
}

// AxisDef describes one sweepable dimension of a domain.
type AxisDef struct {
	// Check validates one swept value (type and name resolution).
	Check func(v any) error
	// Apply sets the value on the scenario and returns its rendering.
	Apply func(sc *Scenario, v any) string
	// Canon renders a valid value in canonical form for duplicate
	// detection, so alias spellings ("sci"/"scientific") collide; nil means
	// formatValue is already canonical.
	Canon func(v any) string
	// Generative marks axes that feed workload/world generation: they are
	// part of the cell's workload identity, so cells differing only in
	// non-generative axes (policy, shape, technique) face identical
	// generated inputs per replica — common random numbers.
	Generative bool
}

// MetricDef is one metric a domain emits: the shared atlarge catalog entry
// (name + comparison direction), so experiment and scenario outputs speak
// one metric vocabulary.
type MetricDef = atlarge.MetricDef

// MetricValue is one emitted measurement of a cell run — the same typed
// metric sample the experiment reports carry.
type MetricValue = atlarge.Metric

// domains is the registry of simulators opened to the scenario engine.
var domains = map[string]Domain{}

// RegisterDomain adds a domain to the registry. Empty and duplicate names
// (case-insensitive) are rejected, so two simulators cannot silently shadow
// each other.
func RegisterDomain(d Domain) error {
	name := d.Name()
	key := strings.ToLower(name)
	if strings.TrimSpace(key) == "" {
		return fmt.Errorf("scenario: domain with empty name")
	}
	if _, dup := domains[key]; dup {
		return fmt.Errorf("scenario: domain %q already registered", name)
	}
	domains[key] = d
	return nil
}

// MustRegisterDomain is RegisterDomain for init-time registration.
func MustRegisterDomain(d Domain) {
	if err := RegisterDomain(d); err != nil {
		panic(err)
	}
}

// DomainByName resolves a registered domain case-insensitively.
func DomainByName(name string) (Domain, error) {
	if d, ok := domains[strings.ToLower(strings.TrimSpace(name))]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("scenario: unknown domain %q (known: %s)",
		name, strings.Join(DomainNames(), ", "))
}

// DomainNames returns the registered domain names, sorted.
func DomainNames() []string {
	out := make([]string, 0, len(domains))
	for name := range domains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// metricNames returns a domain's metric names, sorted.
func metricNames(d Domain) []string {
	defs := d.Metrics()
	out := make([]string, 0, len(defs))
	for _, m := range defs {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}

// domainMetric reports whether the domain emits the named metric.
func domainMetric(d Domain, name string) bool {
	for _, m := range d.Metrics() {
		if m.Name == name {
			return true
		}
	}
	return false
}

// AxisNames returns a domain's sweepable axis names in sorted order.
func AxisNames(d Domain) []string {
	axes := d.Axes()
	out := make([]string, 0, len(axes))
	for name := range axes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
