package scenario

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"

	"atlarge"
	"atlarge/internal/exec"
	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// Options configures a scenario execution.
type Options struct {
	// Replicas overrides the spec's replica count; 0 keeps the spec value
	// (which itself defaults to 1).
	Replicas int
	// Parallelism bounds the executor's worker pool; 0 means GOMAXPROCS.
	// Reports are byte-identical at every parallelism level.
	Parallelism int
	// Seed overrides the spec's base seed when non-nil.
	Seed *int64
	// Progress, when non-nil, observes every (cell, replica) completion as
	// it streams out of the executor: done counts completions so far, total
	// is the plan size, and id names the finished task ("name/policy=sjf#1").
	// Calls arrive sequentially, in completion order.
	Progress func(done, total int, id string)
	// Checkpoint, when non-empty, persists completed (cell, replica)
	// results under this directory and resumes from them on a rerun: the
	// run's files live in Checkpoint/<hash>/ where <hash> is a content hash
	// of the spec document plus the effective seed and replica count, so
	// any spec edit, seed change, or replica change starts a fresh run
	// directory instead of mixing incompatible results. A resumed sweep
	// produces a report byte-identical to an uninterrupted run. The hash
	// does not cover the binary itself: after upgrading atlarge across a
	// change to a simulator, clear the directory — stored results are
	// reused as-is.
	Checkpoint string
	// Stats, when non-nil, receives the executor's live queue counters;
	// the serve layer shares one Stats across every plan it runs so its
	// admission control and /metrics see the whole process backlog.
	Stats *exec.Stats
	// SpanObserver, when non-nil, turns on executor span recording and
	// receives every non-skipped (cell, replica) task's span along with the
	// task's error, in completion order from the collecting goroutine.
	SpanObserver func(index int, id string, span exec.TaskSpan, err error)
	// Stream, when non-nil, replaces the in-process executor: the plan is
	// handed to this StreamFunc instead of exec.Stream. The distributed
	// dispatcher plugs in here (see Distribute); because aggregation is
	// positional, the substitution cannot change report bytes.
	Stream exec.StreamFunc[[]MetricValue]
}

// Effective resolves the run's seed and replica count from the spec and the
// option overrides — the same resolution Run applies, exported so the
// distributed path can describe the identical job to remote workers.
func Effective(s *Spec, opt Options) (seed int64, replicas int) {
	replicas = opt.Replicas
	if replicas <= 0 {
		replicas = s.Replicas
	}
	if replicas <= 0 {
		replicas = 1
	}
	seed = s.Seed
	if opt.Seed != nil {
		seed = *opt.Seed
	}
	return seed, replicas
}

// Run executes the concrete scenarios over the streaming work-plan executor
// (internal/exec) and aggregates each cell's replica metrics into mean ±
// 95% CI incrementally as completions stream in — full replica documents
// are never buffered, so memory is bounded by the metric values the final
// report itself carries.
//
// Every (scenario, replica) pair is one plan task with two deterministic
// derived seeds: the simulation seed atlarge.DeriveSeed(base, cellID,
// replica), and the workload-generation seed DeriveSeed(base, workloadID,
// replica), where workloadID carries only the generation-relevant axes of
// the domain. Cells that differ only in policy, load, shape, or technique
// therefore face the identical generated input per replica (common random
// numbers), so their comparison measures the design change, not workload
// sampling noise.
//
// Cancelling ctx stops the sweep cooperatively: unstarted tasks are
// skipped and the context's error is returned. With Options.Checkpoint set,
// completed tasks persist first, so a cancelled sweep resumes where it
// stopped.
func Run(ctx context.Context, s *Spec, cells []Scenario, opt Options) (*Report, error) {
	d, err := s.domainImpl()
	if err != nil {
		return nil, err
	}
	seed, replicas := Effective(s, opt)

	// One task per (cell, replica), cell-major, carrying its own seed pair;
	// the index cell*replicas+rep is the positional slot aggregation reads.
	plan := &exec.Plan[[]MetricValue]{}
	seen := make(map[string]bool, len(cells))
	for i := range cells {
		sc := &cells[i]
		if seen[sc.ID()] {
			return nil, fmt.Errorf("scenario: duplicate cell %q (a sweep axis repeats a value?)", sc.ID())
		}
		seen[sc.ID()] = true
		for rep := 0; rep < replicas; rep++ {
			workloadSeed := atlarge.DeriveSeed(seed, sc.WorkloadID(), rep)
			simSeed := atlarge.DeriveSeed(seed, sc.ID(), rep)
			plan.Add(sc.ID()+"#"+strconv.Itoa(rep), func(context.Context) ([]MetricValue, error) {
				return sc.domain.Run(sc, workloadSeed, simSeed)
			})
		}
	}

	execOpt := exec.Options[[]MetricValue]{
		Workers: opt.Parallelism,
		Stats:   opt.Stats,
		Spans:   opt.SpanObserver != nil,
	}
	var ckpt *checkpoint
	if opt.Checkpoint != "" {
		ckpt, err = openCheckpoint(opt.Checkpoint, s, seed, replicas, len(cells))
		if err != nil {
			return nil, err
		}
		execOpt.Cache = ckpt
	}

	// Aggregate incrementally: each event's metric values fold into its
	// cell's accumulator (replica slot = index % replicas) and the full
	// result is dropped. Failures are collected in task order so the joined
	// error is deterministic at any parallelism.
	acc := make([]cellAccumulator, len(cells))
	for i := range acc {
		acc[i].byReplica = make([][]MetricValue, replicas)
	}
	stream := opt.Stream
	if stream == nil {
		stream = exec.Stream[[]MetricValue]
	}
	errs := make([]error, plan.Len())
	done := 0
	for ev := range stream(ctx, plan, execOpt) {
		if ev.Err != nil {
			errs[ev.Index] = ev.Err
		} else {
			acc[ev.Index/replicas].byReplica[ev.Index%replicas] = ev.Result
		}
		done++
		if opt.Progress != nil {
			opt.Progress(done, plan.Len(), ev.ID)
		}
		if opt.SpanObserver != nil && ev.Span != nil {
			opt.SpanObserver(ev.Index, ev.ID, *ev.Span, ev.Err)
		}
	}
	// Interrupted means work was actually lost: the context fired AND some
	// task was skipped or returned its error. A deadline that expires after
	// the final task completed must not discard the finished report.
	lost := false
	for _, err := range errs {
		if err != nil {
			lost = true
			break
		}
	}
	if err := ctx.Err(); err != nil && lost {
		// A genuine cell failure must not be masked by the concurrent
		// cancellation: surface the first one alongside the interruption.
		for i, terr := range errs {
			if terr != nil && !errors.Is(terr, context.Canceled) && !errors.Is(terr, context.DeadlineExceeded) {
				err = fmt.Errorf("%w; cell %s (replica %d) also failed: %v",
					err, cells[i/replicas].ID(), i%replicas, terr)
				break
			}
		}
		if ckpt != nil {
			if serr := ckpt.Err(); serr != nil {
				return nil, fmt.Errorf("scenario: run interrupted (%w) and checkpointing failed: %v", err, serr)
			}
			return nil, fmt.Errorf("scenario: run interrupted: %w (completed work is checkpointed under %s; rerun with the same --checkpoint %s to resume)", err, ckpt.dir, ckpt.root)
		}
		return nil, fmt.Errorf("scenario: run interrupted: %w", err)
	}
	// Every failed cell is reported (joined, in task order), so one rerun
	// is enough to see and fix all of them.
	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("scenario: cell %s (replica %d): %w",
				cells[i/replicas].ID(), i%replicas, err))
		}
	}
	if len(failures) > 0 {
		return nil, errors.Join(failures...)
	}
	// A storage failure on a run that nonetheless completed is not fatal:
	// the report in hand is correct and complete, only the durability of a
	// future resume suffered (Cache storage is best-effort by contract).

	rep := &Report{
		Name:        s.Name,
		SpecVersion: s.Version,
		Domain:      d.Name(),
		Seed:        seed,
		Replicas:    replicas,
		Objective:   s.objective(d),
		Axes:        reportAxes(s),
		Cells:       make([]Cell, len(cells)),
		directions:  metricDirections(d),
	}
	for i := range cells {
		rep.Cells[i] = acc[i].cell(&cells[i], seed)
	}
	rep.highlight()
	return rep, nil
}

// cellAccumulator folds one cell's streamed replica results; only the typed
// metric values are retained, never the surrounding documents.
type cellAccumulator struct {
	// byReplica holds each replica's emitted metrics, replica index order.
	byReplica [][]MetricValue
}

// cell assembles the aggregated Cell: metric emission order comes from
// replica 0, values fold across replicas in replica order. Cell.Seed is the
// replica-0 simulation seed, so a single replica of the cell can be
// reproduced directly.
func (a *cellAccumulator) cell(sc *Scenario, baseSeed int64) Cell {
	cell := Cell{
		ID:      sc.ID(),
		Params:  sc.Params,
		Seed:    atlarge.DeriveSeed(baseSeed, sc.ID(), 0),
		Metrics: map[string]Metric{},
	}
	values := map[string][]float64{}
	var order []string
	for rep, ms := range a.byReplica {
		for _, m := range ms {
			if rep == 0 {
				order = append(order, m.Name)
			}
			values[m.Name] = append(values[m.Name], m.Value)
		}
	}
	for _, name := range order {
		cell.Metrics[name] = NewMetric(values[name])
	}
	return cell
}

// metricDirections maps a domain's metric names to their comparison
// direction (true = higher is better).
func metricDirections(d Domain) map[string]bool {
	out := make(map[string]bool)
	for _, m := range d.Metrics() {
		out[m.Name] = m.HigherBetter
	}
	return out
}

// reportAxes renders the spec's sweep axes in expansion order.
func reportAxes(s *Spec) []Axis {
	var out []Axis
	for _, name := range s.sweepAxes() {
		ax := Axis{Name: name}
		for _, v := range s.Sweep[name] {
			ax.Values = append(ax.Values, formatValue(v))
		}
		out = append(out, ax)
	}
	return out
}

// buildTrace resolves the scenario's workload for one replica seed: an
// imported GWA trace, a streamed client population (clients > 0), or a
// generated class (with optional arrival override), then rescaled to the
// target offered load when one is set. It is shared by every domain that
// drives a job-trace workload.
func (sc *Scenario) buildTrace(seed int64, totalCores int) (*workload.Trace, error) {
	var tr *workload.Trace
	if sc.Workload.Trace != "" {
		var err error
		tr, err = sc.spec.loadTrace()
		if err != nil {
			return nil, err
		}
	} else if sc.Workload.Clients > 0 {
		class, err := workload.ClassByName(sc.Workload.Class)
		if err != nil {
			return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
		}
		skew, err := workload.ParseSkew(sc.Workload.Skew)
		if err != nil {
			return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
		}
		pop := &workload.Population{
			Clients: sc.Workload.Clients,
			Mix:     workload.SingleClass(class),
			Skew:    skew,
			Seed:    seed,
		}
		if a := sc.Workload.Arrival; a != nil {
			ap, err := workload.ArrivalsByName(a.Process, a.Params)
			if err != nil {
				return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
			}
			pop.Arrival = ap
		}
		src, err := pop.Source()
		if err != nil {
			return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
		}
		jobs := sc.Workload.Jobs
		if jobs <= 0 {
			jobs = defaultJobs
		}
		tr = workload.Collect(src, jobs)
		src.Close()
	} else {
		class, err := workload.ClassByName(sc.Workload.Class)
		if err != nil {
			return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
		}
		gen := workload.StandardGenerator(class)
		if a := sc.Workload.Arrival; a != nil {
			ap, err := workload.ArrivalsByName(a.Process, a.Params)
			if err != nil {
				return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
			}
			gen.Arrivals = ap
		}
		jobs := sc.Workload.Jobs
		if jobs <= 0 {
			jobs = defaultJobs
		}
		tr = gen.Generate(jobs, rand.New(rand.NewSource(seed)))
	}
	if sc.Workload.Load > 0 {
		scaleToLoad(tr, sc.Workload.Load, totalCores)
	}
	return tr, nil
}

// scaleToLoad rescales submission times so the offered load — total
// CPU-seconds of work divided by (cores × submission span) — hits the
// target. Stretching the span lowers load; compressing raises it. Traces
// whose span or work is zero are left untouched.
func scaleToLoad(tr *workload.Trace, target float64, totalCores int) {
	span := float64(tr.Span())
	if span <= 0 || totalCores <= 0 {
		return
	}
	work := 0.0
	for _, j := range tr.Jobs {
		work += j.TotalWork()
	}
	if work <= 0 {
		return
	}
	wantSpan := work / (float64(totalCores) * target)
	factor := wantSpan / span
	first := tr.Jobs[0].Submit
	for _, j := range tr.Jobs {
		if j.Submit < first {
			first = j.Submit
		}
	}
	for _, j := range tr.Jobs {
		j.Submit = first + sim.Time(float64(j.Submit-first)*factor)
	}
}
