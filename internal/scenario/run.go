package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"atlarge"
	"atlarge/internal/sim"
	"atlarge/internal/workload"
)

// Options configures a scenario execution.
type Options struct {
	// Replicas overrides the spec's replica count; 0 keeps the spec value
	// (which itself defaults to 1).
	Replicas int
	// Parallelism bounds the runner's worker pool; 0 means GOMAXPROCS.
	// Reports are byte-identical at every parallelism level.
	Parallelism int
	// Seed overrides the spec's base seed when non-nil.
	Seed *int64
}

// Run executes the concrete scenarios over the parallel atlarge.Runner and
// aggregates each cell's replica metrics into mean ± 95% CI.
//
// Every (scenario, replica) pair is one unit of work with two deterministic
// derived seeds: the simulation seed atlarge.DeriveSeed(base, cellID,
// replica), and the workload-generation seed DeriveSeed(base, workloadID,
// replica), where workloadID carries only the generation-relevant axes of
// the domain. Cells that differ only in policy, load, shape, or technique
// therefore face the identical generated input per replica (common random
// numbers), so their comparison measures the design change, not workload
// sampling noise.
func Run(s *Spec, cells []Scenario, opt Options) (*Report, error) {
	d, err := s.domainImpl()
	if err != nil {
		return nil, err
	}
	replicas := opt.Replicas
	if replicas <= 0 {
		replicas = s.Replicas
	}
	if replicas <= 0 {
		replicas = 1
	}
	seed := s.Seed
	if opt.Seed != nil {
		seed = *opt.Seed
	}

	reg := atlarge.NewRegistry()
	ids := make([]string, 0, len(cells)*replicas)
	for i := range cells {
		for rep := 0; rep < replicas; rep++ {
			sc := &cells[i]
			id := fmt.Sprintf("%s#%d", sc.ID(), rep)
			workloadSeed := atlarge.DeriveSeed(seed, sc.WorkloadID(), rep)
			simSeed := atlarge.DeriveSeed(seed, sc.ID(), rep)
			if err := reg.Register(atlarge.Experiment{
				ID:    id,
				Title: "scenario " + id,
				Tags:  []string{"scenario"},
				Order: len(ids),
				// The runner's own derived seed is ignored: this unit
				// carries its pair of seeds computed above.
				Run: func(int64) (*atlarge.Report, error) { return runCell(sc, workloadSeed, simSeed) },
			}); err != nil {
				return nil, fmt.Errorf("scenario: duplicate cell %q (a sweep axis repeats a value?): %w", sc.ID(), err)
			}
			ids = append(ids, id)
		}
	}

	runner := &atlarge.Runner{Registry: reg, Parallelism: opt.Parallelism}
	results, err := runner.Run(ids, seed)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Name:        s.Name,
		SpecVersion: s.Version,
		Domain:      d.Name(),
		Seed:        seed,
		Replicas:    replicas,
		Objective:   s.objective(d),
		Axes:        reportAxes(s),
		Cells:       make([]Cell, len(cells)),
		directions:  metricDirections(d),
	}
	for i := range cells {
		cell, err := parseCell(&cells[i], seed, results[i*replicas:(i+1)*replicas])
		if err != nil {
			return nil, err
		}
		rep.Cells[i] = cell
	}
	rep.highlight()
	return rep, nil
}

// metricDirections maps a domain's metric names to their comparison
// direction (true = higher is better).
func metricDirections(d Domain) map[string]bool {
	out := make(map[string]bool)
	for _, m := range d.Metrics() {
		out[m.Name] = m.HigherBetter
	}
	return out
}

// reportAxes renders the spec's sweep axes in expansion order.
func reportAxes(s *Spec) []Axis {
	var out []Axis
	for _, name := range s.sweepAxes() {
		ax := Axis{Name: name}
		for _, v := range s.Sweep[name] {
			ax.Values = append(ax.Values, formatValue(v))
		}
		out = append(out, ax)
	}
	return out
}

// parseCell folds one cell's replica results into a Cell. Cell.Seed is the
// replica-0 simulation seed, so a single replica of the cell can be
// reproduced directly.
func parseCell(sc *Scenario, baseSeed int64, replicaResults []atlarge.Result) (Cell, error) {
	cell := Cell{
		ID:      sc.ID(),
		Params:  sc.Params,
		Seed:    atlarge.DeriveSeed(baseSeed, sc.ID(), 0),
		Metrics: map[string]Metric{},
	}
	values := map[string][]float64{}
	var order []string
	for rep, res := range replicaResults {
		for _, m := range res.Report.Metrics {
			if rep == 0 {
				order = append(order, m.Name)
			}
			values[m.Name] = append(values[m.Name], m.Value)
		}
	}
	for _, name := range order {
		cell.Metrics[name] = NewMetric(values[name])
	}
	return cell, nil
}

// runCell executes one (scenario, replica) through its domain and carries
// the emitted measurements as typed report metrics — values flow to the
// aggregation in value space, never through rendered text.
func runCell(sc *Scenario, workloadSeed, simSeed int64) (*atlarge.Report, error) {
	values, err := sc.domain.Run(sc, workloadSeed, simSeed)
	if err != nil {
		return nil, err
	}
	rep := atlarge.NewReport(sc.ID(), "scenario "+sc.ID())
	rep.Metrics = values
	return rep, nil
}

// buildTrace resolves the scenario's workload for one replica seed: an
// imported GWA trace or a generated class (with optional arrival override),
// then rescaled to the target offered load when one is set. It is shared by
// every domain that drives a job-trace workload.
func (sc *Scenario) buildTrace(seed int64, totalCores int) (*workload.Trace, error) {
	var tr *workload.Trace
	if sc.Workload.Trace != "" {
		var err error
		tr, err = sc.spec.loadTrace()
		if err != nil {
			return nil, err
		}
	} else {
		class, err := workload.ClassByName(sc.Workload.Class)
		if err != nil {
			return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
		}
		gen := workload.StandardGenerator(class)
		if a := sc.Workload.Arrival; a != nil {
			ap, err := workload.ArrivalsByName(a.Process, a.Params)
			if err != nil {
				return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
			}
			gen.Arrivals = ap
		}
		jobs := sc.Workload.Jobs
		if jobs <= 0 {
			jobs = defaultJobs
		}
		tr = gen.Generate(jobs, rand.New(rand.NewSource(seed)))
	}
	if sc.Workload.Load > 0 {
		scaleToLoad(tr, sc.Workload.Load, totalCores)
	}
	return tr, nil
}

// scaleToLoad rescales submission times so the offered load — total
// CPU-seconds of work divided by (cores × submission span) — hits the
// target. Stretching the span lowers load; compressing raises it. Traces
// whose span or work is zero are left untouched.
func scaleToLoad(tr *workload.Trace, target float64, totalCores int) {
	span := float64(tr.Span())
	if span <= 0 || totalCores <= 0 {
		return
	}
	work := 0.0
	for _, j := range tr.Jobs {
		work += j.TotalWork()
	}
	if work <= 0 {
		return
	}
	wantSpan := work / (float64(totalCores) * target)
	factor := wantSpan / span
	first := tr.Jobs[0].Submit
	for _, j := range tr.Jobs {
		if j.Submit < first {
			first = j.Submit
		}
	}
	for _, j := range tr.Jobs {
		j.Submit = first + sim.Time(float64(j.Submit-first)*factor)
	}
}

// sortedMetricNames returns the union of metric names over cells, sorted.
func sortedMetricNames(cells []Cell) []string {
	seen := map[string]bool{}
	for _, c := range cells {
		for name := range c.Metrics {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
