package scenario

import (
	"fmt"
	"strings"

	"atlarge/internal/autoscale"
)

// Metric names emitted by autoscale-domain scenario runs: the §6.7
// elasticity set plus the traditional performance and cost metrics. Every
// one of them is lower-is-better.
const (
	MetricAccuracyUnder   = "accuracy_under"
	MetricAccuracyOver    = "accuracy_over"
	MetricTimeshareUnder  = "timeshare_under"
	MetricTimeshareOver   = "timeshare_over"
	MetricInstability     = "instability"
	MetricJitter          = "jitter"
	MetricCoreSeconds     = "core_seconds"
	MetricDeadlineMissPct = "deadline_miss_pct"
)

func init() { MustRegisterDomain(autoscaleDomain{}) }

// autoscaleDomain opens the §6.7 elasticity testbed to the scenario engine:
// any of the seven autoscalers, under the event-driven in-vitro or in-silico
// engine, on a generated or imported workload, judged by the Herbst-style
// elasticity metrics.
type autoscaleDomain struct{}

func (autoscaleDomain) Name() string { return "autoscale" }

func (autoscaleDomain) DefaultObjective() string { return MetricMeanResponse }

func (autoscaleDomain) Metrics() []MetricDef {
	return []MetricDef{
		{Name: MetricAccuracyOver},
		{Name: MetricAccuracyUnder},
		{Name: MetricCoreSeconds},
		{Name: MetricDeadlineMissPct},
		{Name: MetricInstability},
		{Name: MetricJitter},
		{Name: MetricJobs},
		{Name: MetricMeanResponse},
		{Name: MetricMeanSlowdown},
		{Name: MetricTimeshareOver},
		{Name: MetricTimeshareUnder},
	}
}

func (d autoscaleDomain) Validate(s *Spec, bad func(string, ...any)) {
	rejectSection(s.MMOG != nil, "mmog", d.Name(), bad)
	rejectSection(s.Policy != "", "policy", d.Name(), bad)
	rejectSection(s.Cluster != (ClusterSpec{}), "cluster", d.Name(), bad)
	s.validateWorkloadSpec(bad)

	a := s.Autoscale
	if a == nil {
		a = &AutoscaleSpec{}
	}
	if a.Autoscaler == "" {
		if _, ok := s.Sweep["autoscaler"]; !ok {
			bad("autoscale.autoscaler: required unless swept (known: %s)",
				strings.Join(autoscale.Names(), ", "))
		}
	} else if _, err := autoscale.ByName(a.Autoscaler); err != nil {
		bad("autoscale.autoscaler: %v", err)
	}
	if a.Engine != "" {
		if _, err := autoscale.KindByName(a.Engine); err != nil {
			bad("autoscale.engine: %v", err)
		}
	}
	for _, dim := range []struct {
		name string
		v    float64
	}{{"boot_delay_s", a.BootDelay}, {"eval_interval_s", a.EvalInterval}} {
		if dim.v < 0 {
			bad("autoscale.%s: got %g, must be >= 0 (0 means the engine default)", dim.name, dim.v)
		}
	}
	for _, dim := range []struct {
		name string
		v    int
	}{{"max_cores", a.MaxCores}, {"core_per_vm", a.CorePerVM}} {
		if dim.v < 0 {
			bad("autoscale.%s: got %d, must be >= 0 (0 means the engine default)", dim.name, dim.v)
		}
	}
}

func (autoscaleDomain) Axes() map[string]AxisDef {
	axes := workloadAxes()
	axes["autoscaler"] = AxisDef{
		Check: func(v any) error {
			return checkName(v, func(s string) error { _, err := autoscale.ByName(s); return err })
		},
		Apply: func(sc *Scenario, v any) string {
			sc.Autoscale.Autoscaler = v.(string)
			return v.(string)
		},
		Canon: func(v any) string {
			as, _ := autoscale.ByName(v.(string))
			return as.Name()
		},
	}
	axes["engine"] = AxisDef{
		Check: func(v any) error {
			return checkName(v, func(s string) error { _, err := autoscale.KindByName(s); return err })
		},
		Apply: func(sc *Scenario, v any) string {
			sc.Autoscale.Engine = v.(string)
			return v.(string)
		},
		Canon: func(v any) string {
			k, _ := autoscale.KindByName(v.(string))
			return k.String()
		},
	}
	axes["boot_delay"] = AxisDef{
		// 0 is the unswept "engine default" sentinel in the spec section; a
		// swept 0 would silently run 60s boots under a boot_delay=0 label.
		Check: func(v any) error {
			if err := checkFloat(v, 0); err != nil {
				return err
			}
			if v.(float64) == 0 {
				return fmt.Errorf("got 0; a swept boot delay must be > 0 (0 means the engine default)")
			}
			return nil
		},
		Apply: func(sc *Scenario, v any) string {
			sc.Autoscale.BootDelay = v.(float64)
			return formatValue(v)
		},
	}
	axes["max_cores"] = AxisDef{
		Check: func(v any) error { return checkInt(v, 1) },
		Apply: func(sc *Scenario, v any) string {
			sc.Autoscale.MaxCores = int(v.(float64))
			return formatValue(v)
		},
	}
	return axes
}

// engineConfig resolves the cell's engine configuration from the engine
// kind's defaults plus the spec's overrides.
func (sc *Scenario) engineConfig() (autoscale.EngineConfig, error) {
	a := sc.Autoscale
	kind := autoscale.InVitro
	if a.Engine != "" {
		var err error
		kind, err = autoscale.KindByName(a.Engine)
		if err != nil {
			return autoscale.EngineConfig{}, err
		}
	}
	cfg := autoscale.DefaultVitroConfig()
	if kind == autoscale.InSilico {
		cfg = autoscale.DefaultSilicoConfig()
	}
	if a.BootDelay > 0 {
		cfg.BootDelay = a.BootDelay
	}
	if a.EvalInterval > 0 {
		cfg.EvalInterval = a.EvalInterval
	}
	if a.MaxCores > 0 {
		cfg.MaxCores = a.MaxCores
	}
	if a.CorePerVM > 0 {
		cfg.CorePerVM = a.CorePerVM
	}
	return cfg, nil
}

// Run executes one autoscale cell: generate (or import) the workload under
// the paired workload seed, then run the autoscaler on the event-driven
// engine and emit the elasticity metrics.
func (autoscaleDomain) Run(sc *Scenario, workloadSeed, simSeed int64) ([]MetricValue, error) {
	cfg, err := sc.engineConfig()
	if err != nil {
		return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
	}
	cfg.Seed = simSeed
	as, err := autoscale.ByName(sc.Autoscale.Autoscaler)
	if err != nil {
		return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
	}
	// The offered-load target is relative to the provider's capacity cap.
	tr, err := sc.buildTrace(workloadSeed, cfg.MaxCores)
	if err != nil {
		return nil, err
	}
	st, err := autoscale.Run(cfg, as, tr)
	if err != nil {
		return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
	}
	m := autoscale.ComputeMetrics(st)
	return []MetricValue{
		{Name: MetricJobs, Value: float64(st.JobsDone)},
		{Name: MetricMeanResponse, Value: m.MeanResponse},
		{Name: MetricMeanSlowdown, Value: m.MeanSlowdown},
		{Name: MetricAccuracyUnder, Value: m.AccuracyUnder},
		{Name: MetricAccuracyOver, Value: m.AccuracyOver},
		{Name: MetricTimeshareUnder, Value: m.TimeshareUnder},
		{Name: MetricTimeshareOver, Value: m.TimeshareOver},
		{Name: MetricInstability, Value: m.Instability},
		{Name: MetricJitter, Value: m.Jitter},
		{Name: MetricCoreSeconds, Value: m.CoreSeconds},
		{Name: MetricDeadlineMissPct, Value: m.DeadlineMissPct},
	}, nil
}
