package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"slices"
	"strconv"
	"strings"

	"atlarge"
)

// Metric is one aggregated measurement of a cell: the per-replica values in
// replica order plus their mean and 95% CI half-width. It is the shared
// atlarge value-space aggregate, so scenario cells and experiment replicas
// aggregate through one type.
type Metric = atlarge.Sample

// NewMetric aggregates per-replica values.
func NewMetric(values []float64) Metric { return atlarge.NewSample(values) }

// Axis is one sweep dimension with its rendered values in declared order.
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// Cell is one concrete scenario's aggregated outcome.
type Cell struct {
	// ID is the scenario identifier (also the seed-derivation key).
	ID string `json:"id"`
	// Params are the axis assignments that produced the cell.
	Params []Param `json:"params,omitempty"`
	// Seed is the derived base seed of replica 0.
	Seed int64 `json:"seed"`
	// Metrics maps metric name to its replica aggregate.
	Metrics map[string]Metric `json:"metrics"`
	// BestFor lists the "axis=value" groups in which this cell has the
	// best objective value.
	BestFor []string `json:"best_for,omitempty"`
}

// param returns the cell's rendered value for an axis ("" when not swept).
func (c *Cell) param(axis string) string {
	for _, p := range c.Params {
		if p.Axis == axis {
			return p.Value
		}
	}
	return ""
}

// Report is the comparative outcome of a scenario run or sweep. Its JSON
// form carries no timing and is byte-identical for any parallelism level.
type Report struct {
	Name        string `json:"name"`
	SpecVersion int    `json:"spec_version"`
	// Domain is the simulation domain the cells ran in.
	Domain    string `json:"domain"`
	Seed      int64  `json:"seed"`
	Replicas  int    `json:"replicas"`
	Objective string `json:"objective"`
	Axes      []Axis `json:"axes,omitempty"`
	Cells     []Cell `json:"cells"`
	// BestCell is the objective-best cell over the whole sweep.
	BestCell string `json:"best_cell,omitempty"`

	// directions maps metric name to comparison direction (true = higher
	// is better), populated from the domain's metric catalog at run time.
	directions map[string]bool
}

// higherBetter reports the objective's comparison direction.
func (r *Report) higherBetter() bool { return r.directions[r.Objective] }

// better reports whether a beats b on the report's objective direction.
func (r *Report) better(a, b float64) bool {
	if r.higherBetter() {
		return a > b
	}
	return a < b
}

// highlight computes BestCell and each cell's BestFor groups: for every
// value of every axis, the cell with the best objective among the cells
// sharing that value. Ties keep the earliest cell, so the marking is
// deterministic.
func (r *Report) highlight() {
	bestIn := func(cells []int) int {
		best := -1
		for _, ci := range cells {
			m, ok := r.Cells[ci].Metrics[r.Objective]
			if !ok {
				continue
			}
			if best < 0 || r.better(m.Mean, r.Cells[best].Metrics[r.Objective].Mean) {
				best = ci
			}
		}
		return best
	}

	all := make([]int, len(r.Cells))
	for i := range r.Cells {
		all[i] = i
	}
	if bi := bestIn(all); bi >= 0 && len(r.Cells) > 1 {
		r.BestCell = r.Cells[bi].ID
	}
	for _, ax := range r.Axes {
		for _, v := range ax.Values {
			var group []int
			for i := range r.Cells {
				if r.Cells[i].param(ax.Name) == v {
					group = append(group, i)
				}
			}
			if len(group) < 2 {
				continue
			}
			if bi := bestIn(group); bi >= 0 {
				c := &r.Cells[bi]
				c.BestFor = append(c.BestFor, ax.Name+"="+v)
			}
		}
	}
}

// WriteJSON emits the machine-readable report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits the report in long form: one row per (cell, metric), with
// one leading column per sweep axis.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"scenario"}
	for _, ax := range r.Axes {
		header = append(header, ax.Name)
	}
	header = append(header, "metric", "mean", "ci95")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("scenario: csv: %w", err)
	}
	for _, cell := range r.Cells {
		for _, name := range sortedMetricNames([]Cell{cell}) {
			m := cell.Metrics[name]
			row := []string{cell.ID}
			for _, ax := range r.Axes {
				row = append(row, cell.param(ax.Name))
			}
			row = append(row, name, formatMean(m.Mean), formatMean(m.CI95))
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("scenario: csv: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatMean renders an aggregated value compactly but stably.
func formatMean(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteText emits the human-readable comparative report: a header, a pivot
// table of the objective for two-axis sweeps, and the full per-cell metric
// table. Cells marked "*" are the best in at least one axis group.
func (r *Report) WriteText(w io.Writer) error {
	direction := "lower is better"
	if r.higherBetter() {
		direction = "higher is better"
	}
	fmt.Fprintf(w, "scenario %q (domain %s): %d cell(s) x %d replica(s), seed %d, objective %s (%s)\n",
		r.Name, r.Domain, len(r.Cells), r.Replicas, r.Seed, r.Objective, direction)
	for _, ax := range r.Axes {
		fmt.Fprintf(w, "  axis %s: %s\n", ax.Name, strings.Join(ax.Values, " "))
	}
	if len(r.Axes) == 2 {
		fmt.Fprintln(w)
		r.writePivot(w)
	}
	fmt.Fprintln(w)
	r.writeCellTable(w)
	if r.BestCell != "" {
		fmt.Fprintf(w, "\nbest cell (%s): %s\n", r.Objective, r.BestCell)
	}
	if len(r.Axes) > 0 {
		fmt.Fprintln(w, `cells marked "*" are best in their axis group (see best_for in the JSON report)`)
	}
	return nil
}

// writePivot renders the objective as rows × columns over the two axes.
func (r *Report) writePivot(w io.Writer) {
	rowAx, colAx := r.Axes[0], r.Axes[1]
	cellAt := func(rv, cv string) *Cell {
		for i := range r.Cells {
			if r.Cells[i].param(rowAx.Name) == rv && r.Cells[i].param(colAx.Name) == cv {
				return &r.Cells[i]
			}
		}
		return nil
	}
	table := make([][]string, 0, len(rowAx.Values)+1)
	head := []string{r.Objective + " | " + rowAx.Name + `\` + colAx.Name}
	head = append(head, colAx.Values...)
	table = append(table, head)
	for _, rv := range rowAx.Values {
		row := []string{rv}
		for _, cv := range colAx.Values {
			cell := cellAt(rv, cv)
			if cell == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, renderMetric(cell.Metrics, r.Objective)+mark(cell))
		}
		table = append(table, row)
	}
	writeAligned(w, table)
}

// writeCellTable renders every cell with every metric.
func (r *Report) writeCellTable(w io.Writer) {
	names := sortedMetricNames(r.Cells)
	head := []string{"scenario"}
	head = append(head, names...)
	table := [][]string{head}
	for i := range r.Cells {
		cell := &r.Cells[i]
		row := []string{cell.ID + mark(cell)}
		for _, name := range names {
			row = append(row, renderMetric(cell.Metrics, name))
		}
		table = append(table, row)
	}
	writeAligned(w, table)
}

// sortedMetricNames returns the union of metric names over cells, sorted.
func sortedMetricNames(cells []Cell) []string {
	seen := map[string]bool{}
	for _, c := range cells {
		for name := range c.Metrics {
			seen[name] = true
		}
	}
	return slices.Sorted(maps.Keys(seen))
}

// mark flags cells that are best in at least one axis group.
func mark(c *Cell) string {
	if len(c.BestFor) > 0 {
		return "*"
	}
	return ""
}

// renderMetric formats "mean±ci95" (mean alone when the CI is zero).
func renderMetric(ms map[string]Metric, name string) string {
	m, ok := ms[name]
	if !ok {
		return "-"
	}
	if m.CI95 == 0 {
		return fmt.Sprintf("%.4g", m.Mean)
	}
	return fmt.Sprintf("%.4g±%.2g", m.Mean, m.CI95)
}

// writeAligned prints a table with space-padded columns through the shared
// atlarge aligner (rune-counted widths, so "±" in aggregated cells does not
// skew the padding).
func writeAligned(w io.Writer, table [][]string) {
	for _, line := range atlarge.AlignRows(table) {
		fmt.Fprintln(w, line)
	}
}
