package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// checkpoint persists completed (cell, replica) results of one sweep so an
// interrupted run can resume to a byte-identical report. It implements the
// executor's Cache: Load serves a previously stored result without
// re-running the task, Store writes one as it completes.
//
// Layout: <root>/<runHash>/ holds one JSON file per completed task, named
// by a hash of the task ID (cell IDs contain '/' and '='), plus a
// human-readable manifest.json. runHash is a content hash over the spec
// document, the effective seed, and the effective replica count — the
// invalidation rule: edit the spec, change the seed, or change the replica
// count and the run keys a fresh directory, so stale results can never leak
// into a different experiment design.
type checkpoint struct {
	// root is the user-given checkpoint directory (the --checkpoint value,
	// used in messages); dir is root/<runHash>, where the files live.
	root string
	dir  string

	// mu guards err; file operations themselves are per-task independent.
	mu  sync.Mutex
	err error
}

// taskFile is the persisted result of one (cell, replica) task. ID is
// stored and verified on load, so a filename hash collision degrades to a
// re-run instead of serving the wrong cell's metrics.
type taskFile struct {
	ID      string        `json:"id"`
	Metrics []MetricValue `json:"metrics"`
}

// manifest describes a run directory for humans and tooling.
type manifest struct {
	Name     string `json:"name"`
	Domain   string `json:"domain"`
	Seed     int64  `json:"seed"`
	Replicas int    `json:"replicas"`
	Cells    int    `json:"cells"`
	Tasks    int    `json:"tasks"`
}

// RunHash is the content hash identifying one (spec, seed, replicas) run:
// sha256 over the spec's canonical JSON (maps marshal with sorted keys, so
// the bytes are deterministic for a given document) plus the effective seed
// and replica count. It keys the checkpoint run directory, and the serve
// layer reuses it as the durable job ID — identical sweeps submitted by
// concurrent clients hash to the same job.
func RunHash(s *Spec, seed int64, replicas int) (string, error) {
	specJSON, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("scenario: hash spec: %w", err)
	}
	h := sha256.New()
	h.Write(specJSON)
	var tail [16]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(seed))
	binary.LittleEndian.PutUint64(tail[8:], uint64(replicas))
	h.Write(tail[:])
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// openCheckpoint creates (or reopens) the run directory for this
// (spec, seed, replicas) under root and writes its manifest.
func openCheckpoint(root string, s *Spec, seed int64, replicas, cells int) (*checkpoint, error) {
	hash, err := RunHash(s, seed, replicas)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(root, hash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: checkpoint: %w", err)
	}
	m := manifest{
		Name:     s.Name,
		Domain:   s.Domain,
		Seed:     seed,
		Replicas: replicas,
		Cells:    cells,
		Tasks:    cells * replicas,
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: checkpoint: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(raw, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("scenario: checkpoint: %w", err)
	}
	return &checkpoint{root: root, dir: dir}, nil
}

// taskPath maps a task ID to its file.
func (c *checkpoint) taskPath(id string) string {
	sum := sha256.Sum256([]byte(id))
	return filepath.Join(c.dir, "task-"+hex.EncodeToString(sum[:])[:32]+".json")
}

// Load returns the persisted result for a task, if a valid file exists.
// Unreadable, torn, or mismatched files count as missing — the task simply
// re-runs — so a kill mid-write can never corrupt a resumed report.
func (c *checkpoint) Load(id string) ([]MetricValue, bool) {
	raw, err := os.ReadFile(c.taskPath(id))
	if err != nil {
		return nil, false
	}
	var tf taskFile
	if err := json.Unmarshal(raw, &tf); err != nil || tf.ID != id {
		return nil, false
	}
	return tf.Metrics, true
}

// Store persists one completed task atomically (temp file + rename), so
// concurrent workers and abrupt kills leave either a complete file or none.
// The first failure is latched and surfaced through Err after the run.
func (c *checkpoint) Store(id string, ms []MetricValue) {
	raw, err := json.Marshal(taskFile{ID: id, Metrics: ms})
	if err != nil {
		c.setErr(err)
		return
	}
	path := c.taskPath(id)
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		c.setErr(err)
		return
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		c.setErr(err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.setErr(err)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.setErr(err)
	}
}

// setErr latches the first storage failure.
func (c *checkpoint) setErr(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

// Err returns the first storage failure of the run, nil when all writes
// landed.
func (c *checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
