package scenario

import (
	"fmt"
	"sort"
	"strings"

	"atlarge/internal/cluster"
	"atlarge/internal/portfolio"
	"atlarge/internal/sched"
	"atlarge/internal/workload"
)

// Metric names emitted by sched-domain scenario runs. Static policies report
// the full set; the portfolio scheduler reports the subset its result
// carries plus its selection counters.
const (
	MetricJobs           = "jobs"
	MetricMakespan       = "makespan_s"
	MetricMeanResponse   = "mean_response_s"
	MetricMeanWait       = "mean_wait_s"
	MetricMeanSlowdown   = "mean_slowdown"
	MetricUtilization    = "utilization"
	MetricDeadlineMisses = "deadline_misses"
	MetricWindows        = "windows"
	MetricSelectionSims  = "selection_sims"
)

// portfolioMetrics are the metrics a sched cell emits for the portfolio
// scheduler; simulatorMetrics are the ones static policies emit. The
// objective must be emitted by every policy a spec runs, or best-cell
// highlighting would silently do nothing.
var (
	portfolioMetrics = map[string]bool{
		MetricJobs: true, MetricMeanResponse: true, MetricMeanSlowdown: true,
		MetricWindows: true, MetricSelectionSims: true,
	}
	simulatorMetrics = map[string]bool{
		MetricJobs: true, MetricMakespan: true, MetricMeanResponse: true,
		MetricMeanWait: true, MetricMeanSlowdown: true, MetricUtilization: true,
		MetricDeadlineMisses: true,
	}
)

func init() { MustRegisterDomain(schedDomain{}) }

// schedDomain is the cluster-scheduling simulator behind the scenario
// engine: Table 9 workload classes or GWA traces, environment shapes, and
// scheduling policies (or the portfolio scheduler) on the event kernel.
type schedDomain struct{}

func (schedDomain) Name() string { return "sched" }

func (schedDomain) DefaultObjective() string { return MetricMeanResponse }

func (schedDomain) Metrics() []MetricDef {
	return []MetricDef{
		{Name: MetricDeadlineMisses},
		{Name: MetricJobs},
		{Name: MetricMakespan},
		{Name: MetricMeanResponse},
		{Name: MetricMeanSlowdown},
		{Name: MetricMeanWait},
		{Name: MetricSelectionSims},
		{Name: MetricUtilization, HigherBetter: true},
		{Name: MetricWindows},
	}
}

// isPortfolio matches the portfolio policy name case-insensitively, like
// every other name lookup.
func isPortfolio(name string) bool { return strings.EqualFold(name, PolicyPortfolio) }

func validPolicy(name string) error {
	if isPortfolio(name) {
		return nil
	}
	if _, err := sched.PolicyByName(name); err != nil {
		return fmt.Errorf("unknown policy %q (known: %s, or %q)",
			name, strings.Join(sched.PolicyNames(), ", "), PolicyPortfolio)
	}
	return nil
}

func (d schedDomain) Validate(s *Spec, bad func(string, ...any)) {
	rejectSection(s.Autoscale != nil, "autoscale", d.Name(), bad)
	rejectSection(s.MMOG != nil, "mmog", d.Name(), bad)
	s.validateWorkloadSpec(bad)

	c := s.Cluster
	if c.Kind != "" {
		if _, err := cluster.KindByName(c.Kind); err != nil {
			bad("cluster.kind: %v", err)
		}
	}
	for _, dim := range []struct {
		name string
		v    int
	}{{"sites", c.Sites}, {"machines", c.Machines}, {"cores", c.Cores}} {
		if dim.v < 0 {
			bad("cluster.%s: got %d, must be >= 0 (0 means the kind's standard shape)", dim.name, dim.v)
		}
	}

	if s.Policy == "" {
		if _, ok := s.Sweep["policy"]; !ok {
			bad("policy: required unless swept (known: %s, or %q)",
				strings.Join(sched.PolicyNames(), ", "), PolicyPortfolio)
		}
	} else if err := validPolicy(s.Policy); err != nil {
		bad("policy: %v", err)
	}

	d.validateObjectiveEmission(s, bad)
}

// validateObjectiveEmission checks the highlight metric is emitted by every
// policy the spec runs — otherwise best-cell highlighting would silently
// produce nothing.
func (d schedDomain) validateObjectiveEmission(s *Spec, bad func(string, ...any)) {
	obj := s.objective(d)
	if !domainMetric(d, obj) {
		return // the generic unknown-metric error already covers this
	}
	// Collect every (valid) policy some cell will actually run: the swept
	// values when the policy axis is swept (it overrides the base in every
	// cell), the base policy otherwise.
	policies := []string{}
	if swept, ok := s.Sweep["policy"]; ok {
		for _, v := range swept {
			if name, ok := v.(string); ok && validPolicy(name) == nil {
				policies = append(policies, name)
			}
		}
	} else if s.Policy != "" {
		policies = append(policies, s.Policy)
	}
	for _, p := range policies {
		emitted := simulatorMetrics
		if isPortfolio(p) {
			emitted = portfolioMetrics
		}
		if !emitted[obj] {
			names := make([]string, 0, len(emitted))
			for name := range emitted {
				names = append(names, name)
			}
			sort.Strings(names)
			bad("objective: policy %q does not emit %q (it emits: %s)", p, obj, strings.Join(names, ", "))
		}
	}
}

// workloadAxes are the generator axes shared by every domain that drives a
// job-trace workload (sched, autoscale): class, arrival, jobs, load.
func workloadAxes() map[string]AxisDef {
	return map[string]AxisDef{
		"class": {
			Check: func(v any) error {
				return checkName(v, func(s string) error { _, err := workload.ClassByName(s); return err })
			},
			Apply: func(sc *Scenario, v any) string {
				sc.Workload.Class = v.(string)
				sc.Workload.Trace = ""
				return v.(string)
			},
			Canon: func(v any) string {
				c, _ := workload.ClassByName(v.(string))
				return c.String()
			},
			Generative: true,
		},
		"arrival": {
			Check: func(v any) error {
				return checkName(v, func(s string) error { _, err := workload.ArrivalsByName(s, nil); return err })
			},
			Canon: func(v any) string { return strings.ToLower(v.(string)) },
			Apply: func(sc *Scenario, v any) string {
				name := v.(string)
				// Keep the base spec's parameter overrides when it names the
				// same family; other families start from their defaults.
				params := map[string]float64(nil)
				if a := sc.spec.Workload.Arrival; a != nil && strings.EqualFold(a.Process, name) {
					params = a.Params
				}
				sc.Workload.Arrival = &ArrivalSpec{Process: name, Params: params}
				return name
			},
			Generative: true,
		},
		"jobs": {
			Check: func(v any) error { return checkInt(v, 1) },
			Apply: func(sc *Scenario, v any) string {
				sc.Workload.Jobs = int(v.(float64))
				return formatValue(v)
			},
			Generative: true,
		},
		"load": {
			Check: func(v any) error { return checkFloat(v, 0) },
			Apply: func(sc *Scenario, v any) string {
				sc.Workload.Load = v.(float64)
				return formatValue(v)
			},
		},
		"clients": {
			Check: func(v any) error { return checkInt(v, 1) },
			Apply: func(sc *Scenario, v any) string {
				sc.Workload.Clients = int(v.(float64))
				sc.Workload.Trace = ""
				return formatValue(v)
			},
			Generative: true,
		},
		"skew": {
			Check: func(v any) error {
				return checkName(v, func(s string) error { _, err := workload.ParseSkew(s); return err })
			},
			Canon: func(v any) string { return strings.ToLower(v.(string)) },
			Apply: func(sc *Scenario, v any) string {
				sc.Workload.Skew = strings.ToLower(v.(string))
				return sc.Workload.Skew
			},
			Generative: true,
		},
	}
}

func (schedDomain) Axes() map[string]AxisDef {
	axes := workloadAxes()
	axes["policy"] = AxisDef{
		Check: func(v any) error { return checkName(v, validPolicy) },
		Apply: func(sc *Scenario, v any) string {
			sc.Policy = v.(string)
			return v.(string)
		},
		// Resolve through the registry so any spelling sched accepts
		// ("easy-bf", "EASYBF") collapses to one canonical name.
		Canon: func(v any) string {
			if isPortfolio(v.(string)) {
				return PolicyPortfolio
			}
			p, _ := sched.PolicyByName(v.(string))
			return p.Name()
		},
	}
	axes["kind"] = AxisDef{
		Check: func(v any) error {
			return checkName(v, func(s string) error { _, err := cluster.KindByName(s); return err })
		},
		Apply: func(sc *Scenario, v any) string {
			sc.Cluster.Kind = v.(string)
			return v.(string)
		},
		Canon: func(v any) string {
			k, _ := cluster.KindByName(v.(string))
			return k.String()
		},
	}
	axes["sites"] = AxisDef{
		Check: func(v any) error { return checkInt(v, 1) },
		Apply: func(sc *Scenario, v any) string {
			sc.Cluster.Sites = int(v.(float64))
			return formatValue(v)
		},
	}
	axes["machines"] = AxisDef{
		Check: func(v any) error { return checkInt(v, 1) },
		Apply: func(sc *Scenario, v any) string {
			sc.Cluster.Machines = int(v.(float64))
			return formatValue(v)
		},
	}
	axes["cores"] = AxisDef{
		Check: func(v any) error { return checkInt(v, 1) },
		Apply: func(sc *Scenario, v any) string {
			sc.Cluster.Cores = int(v.(float64))
			return formatValue(v)
		},
	}
	return axes
}

// Run executes one sched cell: build the environment and trace, then run the
// named policy (or the portfolio scheduler) and emit its metrics.
func (schedDomain) Run(sc *Scenario, workloadSeed, simSeed int64) ([]MetricValue, error) {
	env, envFactory, err := sc.buildEnv()
	if err != nil {
		return nil, err
	}
	tr, err := sc.buildTrace(workloadSeed, env.TotalCores())
	if err != nil {
		return nil, err
	}

	if isPortfolio(sc.Policy) {
		ps := &portfolio.Scheduler{
			Policies:   sched.DefaultPortfolio(),
			Selector:   portfolio.Exhaustive{},
			WindowSize: 25,
			EnvFactory: envFactory,
			Seed:       simSeed,
		}
		res, err := ps.Run(tr)
		if err != nil {
			return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
		}
		return []MetricValue{
			{Name: MetricJobs, Value: float64(len(tr.Jobs))},
			{Name: MetricMeanResponse, Value: res.MeanResponse},
			{Name: MetricMeanSlowdown, Value: res.MeanSlowdown},
			{Name: MetricWindows, Value: float64(len(res.Choices))},
			{Name: MetricSelectionSims, Value: float64(res.TotalSimRuns)},
		}, nil
	}

	pol, err := sched.PolicyByName(sc.Policy)
	if err != nil {
		return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
	}
	res, err := sched.NewSimulator(env, tr, pol, simSeed).Run()
	if err != nil {
		return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
	}
	return []MetricValue{
		{Name: MetricJobs, Value: float64(len(res.Jobs))},
		{Name: MetricMakespan, Value: float64(res.Makespan)},
		{Name: MetricMeanResponse, Value: res.MeanResponse},
		{Name: MetricMeanWait, Value: res.MeanWait},
		{Name: MetricMeanSlowdown, Value: res.MeanSlowdown},
		{Name: MetricUtilization, Value: res.UtilizationMean},
		{Name: MetricDeadlineMisses, Value: float64(res.DeadlineMisses)},
	}, nil
}

// buildEnv resolves the scenario's environment: the kind's calibrated
// standard shape, with any of sites/machines/cores overridden. The factory
// rebuilds fresh environments for the portfolio scheduler's what-if probes.
func (sc *Scenario) buildEnv() (*cluster.Environment, func() *cluster.Environment, error) {
	kindName := sc.Cluster.Kind
	if kindName == "" {
		kindName = "CL"
	}
	kind, err := cluster.KindByName(kindName)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
	}
	std := cluster.StandardEnvironment(kind)
	sites, machines, cores := sc.Cluster.Sites, sc.Cluster.Machines, sc.Cluster.Cores
	if sites == 0 {
		sites = len(std.Clusters)
	}
	if machines == 0 {
		machines = len(std.Clusters[0].Machines)
	}
	if cores == 0 {
		cores = std.Clusters[0].Machines[0].Cores
	}
	factory := func() *cluster.Environment { return cluster.NewHomogeneous(kind, sites, machines, cores) }
	return factory(), factory, nil
}
