package scenario

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// renderJSON runs the spec's cells and returns the report bytes.
func renderJSON(t *testing.T, s *Spec, cells []Scenario, opt Options) []byte {
	t.Helper()
	rep, err := Run(context.Background(), s, cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointResumeByteIdentical is the core resume invariant: interrupt
// a checkpointed sweep mid-run, resume it from the same directory, and the
// final report must be byte-identical to an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	want := renderJSON(t, s, cells, Options{Parallelism: 1})

	dir := t.TempDir()

	// Interrupt at roughly half the plan: cancel from the progress hook,
	// sequential workers, so a prefix of tasks completes and checkpoints.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Run(ctx, s, cells, Options{
		Parallelism: 1,
		Checkpoint:  dir,
		Progress: func(done, total int, id string) {
			if done == total/2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}

	// The run directory holds the manifest plus the completed prefix.
	files, err := filepath.Glob(filepath.Join(dir, "*", "task-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("interrupted run checkpointed nothing")
	}
	total := len(cells) * 2 // spec replicas
	if len(files) >= total {
		t.Fatalf("interrupted run checkpointed all %d tasks; interruption did not interrupt", total)
	}

	got := renderJSON(t, s, cells, Options{Parallelism: 4, Checkpoint: dir})
	if !bytes.Equal(got, want) {
		t.Error("resumed report differs from uninterrupted run")
	}

	// A fully warm directory resumes again, still byte-identical.
	again := renderJSON(t, s, cells, Options{Parallelism: 2, Checkpoint: dir})
	if !bytes.Equal(again, want) {
		t.Error("second resume differs from uninterrupted run")
	}
}

// TestCheckpointHashInvalidation: seed, replica, and spec changes must key
// distinct run directories, so incompatible results never mix.
func TestCheckpointHashInvalidation(t *testing.T) {
	base := specJSON(t, validSweepSpec)
	h1, err := RunHash(base, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h2, _ := RunHash(base, 8, 2); h2 == h1 {
		t.Error("seed change did not change the run hash")
	}
	if h2, _ := RunHash(base, 7, 3); h2 == h1 {
		t.Error("replica change did not change the run hash")
	}
	edited := specJSON(t, validSweepSpec)
	edited.Workload.Jobs = 13
	if h2, _ := RunHash(edited, 7, 2); h2 == h1 {
		t.Error("spec edit did not change the run hash")
	}
	if h2, _ := RunHash(specJSON(t, validSweepSpec), 7, 2); h2 != h1 {
		t.Error("identical inputs produced different run hashes")
	}
}

// TestCheckpointCorruptFileReruns: a torn or foreign task file counts as
// missing and the task re-runs, rather than poisoning the report.
func TestCheckpointCorruptFileReruns(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	want := renderJSON(t, s, cells, Options{Parallelism: 1})

	dir := t.TempDir()
	got := renderJSON(t, s, cells, Options{Parallelism: 1, Checkpoint: dir})
	if !bytes.Equal(got, want) {
		t.Fatal("checkpointed run differs from plain run")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*", "task-*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no task files: %v", err)
	}
	// Tear one file and swap another's identity.
	if err := os.WriteFile(files[0], []byte(`{"id":"tor`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], []byte(`{"id":"someone-else#0","metrics":[{"name":"x","value":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed := renderJSON(t, s, cells, Options{Parallelism: 1, Checkpoint: dir})
	if !bytes.Equal(resumed, want) {
		t.Error("resume over corrupt files deviates from uninterrupted run")
	}
}

// TestRunProgressStreams: the progress hook sees every task exactly once
// with a monotonically increasing done count.
func TestRunProgressStreams(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	_, err = Run(context.Background(), s, cells, Options{Parallelism: 4, Progress: func(done, total int, id string) {
		calls++
		if done != calls {
			t.Errorf("done = %d on call %d", done, calls)
		}
		if total != len(cells)*2 {
			t.Errorf("total = %d, want %d", total, len(cells)*2)
		}
		if id == "" {
			t.Error("empty task id")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(cells)*2 {
		t.Errorf("progress calls = %d, want %d", calls, len(cells)*2)
	}
}

// TestRunCancelledContext: a pre-cancelled context fails fast with the
// context error and runs nothing.
func TestRunCancelledContext(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, s, cells, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestRunCancelAfterCompletion: a context that fires after the last task
// has completed must not discard the finished report — no work was lost.
func TestRunCancelAfterCompletion(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := Run(ctx, s, cells, Options{Parallelism: 1, Progress: func(done, total int, id string) {
		if done == total {
			cancel() // fires between the last completion and Run's return
		}
	}})
	if err != nil {
		t.Fatalf("completed run discarded: %v", err)
	}
	if len(rep.Cells) != len(cells) {
		t.Fatalf("report has %d cells, want %d", len(rep.Cells), len(cells))
	}
}

// TestRunDuplicateCells: duplicate cell IDs are rejected before anything
// runs (the registry used to catch this; the plan builder must too).
func TestRunDuplicateCells(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	dup := append(cells, cells[0])
	if _, err := Run(context.Background(), s, dup, Options{}); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("duplicate cell accepted: %v", err)
	}
}
