package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"atlarge/internal/dist"
)

// startSweepWorkers boots k real protocol workers serving sweep jobs and
// dials them.
func startSweepWorkers(t *testing.T, k int) []*dist.Client {
	t.Helper()
	clients := make([]*dist.Client, k)
	for i := range clients {
		w := &dist.Worker{Build: map[string]dist.Builder{DistJobKind: WorkerBuilder()}, Parallelism: 2}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		c, err := dist.Dial(context.Background(), srv.URL)
		if err != nil {
			t.Fatalf("dial worker %d: %v", i, err)
		}
		clients[i] = c
	}
	return clients
}

// renderAll renders a report in every output format, concatenated, so one
// comparison covers text, JSON, and CSV bytes at once.
func renderAll(t *testing.T, s *Spec, cells []Scenario, opt Options) []byte {
	t.Helper()
	rep, err := Run(context.Background(), s, cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistributeByteIdentical is the subsystem's core guarantee: a sweep
// distributed across worker processes renders byte-identically — text, JSON,
// and CSV — to the in-process run, at any worker count.
func TestDistributeByteIdentical(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, s, cells, Options{Parallelism: 4})

	for _, workers := range []int{1, 3} {
		clients := startSweepWorkers(t, workers)
		opt := Options{Parallelism: 2}
		if err := Distribute(&opt, s, clients, &dist.Stats{}); err != nil {
			t.Fatal(err)
		}
		got := renderAll(t, s, cells, opt)
		if !bytes.Equal(got, want) {
			t.Errorf("%d-worker distributed report differs from in-process run", workers)
		}
	}
}

// TestDistributeSeedReplicaOverrides: option overrides must reach the remote
// plans — a distributed run with --seed/--replicas matches the in-process
// run under the same overrides, not the spec defaults.
func TestDistributeSeedReplicaOverrides(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(99)
	want := renderAll(t, s, cells, Options{Parallelism: 2, Seed: &seed, Replicas: 3})

	clients := startSweepWorkers(t, 2)
	opt := Options{Parallelism: 2, Seed: &seed, Replicas: 3}
	if err := Distribute(&opt, s, clients, &dist.Stats{}); err != nil {
		t.Fatal(err)
	}
	got := renderAll(t, s, cells, opt)
	if !bytes.Equal(got, want) {
		t.Error("distributed run with overrides differs from in-process run")
	}
}

// flakySweepWorker speaks the real protocol with real sweep results but dies
// (connection abort) after `limit` tasks of every claim — a worker process
// SIGKILLed mid-range.
func flakySweepWorker(t *testing.T, limit int) *dist.Client {
	t.Helper()
	build := WorkerBuilder()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/handshake", func(rw http.ResponseWriter, r *http.Request) {
		raw, _ := json.Marshal(dist.Handshake{Service: dist.HandshakeService, Protocol: dist.ProtocolVersion})
		rw.Write(append(raw, '\n'))
	})
	mux.HandleFunc("POST /v1/tasks:claim", func(rw http.ResponseWriter, r *http.Request) {
		var req dist.ClaimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			panic(http.ErrAbortHandler)
		}
		plan, err := build(req.Job)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		skip := make(map[int]bool)
		for _, i := range req.Skip {
			skip[i] = true
		}
		flusher, _ := rw.(http.Flusher)
		write := func(v any) {
			raw, _ := json.Marshal(v)
			rw.Write(append(raw, '\n'))
			flusher.Flush()
		}
		write(&dist.Message{Type: dist.MsgClaim})
		sent := 0
		for i := req.Start; i < req.End; i++ {
			if skip[i] {
				continue
			}
			if sent == limit {
				break
			}
			res, rerr := plan.Tasks[i].Run(r.Context())
			m := &dist.Message{Index: i, ID: plan.Tasks[i].ID, Type: dist.MsgResult, Result: res}
			if rerr != nil {
				m = &dist.Message{Index: i, ID: plan.Tasks[i].ID, Type: dist.MsgError, Error: rerr.Error()}
			}
			write(m)
			sent++
		}
		panic(http.ErrAbortHandler)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	c, err := dist.Dial(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDistributeWorkerDeathByteIdentical is satellite 3's invariant: kill a
// worker mid-range and the sweep still completes — no (cell, replica) result
// dropped or duplicated, only lost work re-run — byte-identical to an
// uninterrupted in-process run.
func TestDistributeWorkerDeathByteIdentical(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, s, cells, Options{Parallelism: 4})

	// The sweep chunks to single-task claims at this size, so the dying
	// worker must fail before its first result for the claim to be lost.
	clients := append(startSweepWorkers(t, 1), flakySweepWorker(t, 0))
	dstats := &dist.Stats{}
	opt := Options{Parallelism: 2}
	if err := Distribute(&opt, s, clients, dstats); err != nil {
		t.Fatal(err)
	}
	got := renderAll(t, s, cells, opt)
	if !bytes.Equal(got, want) {
		t.Error("report after mid-range worker death differs from uninterrupted in-process run")
	}
	if dstats.Redispatched() == 0 {
		t.Error("dying worker cost no re-dispatches; the failure path did not run")
	}
}

// TestDistributeSharesCheckpointStore: the checkpoint directory doubles as
// the distributed run's shared result cache — an in-process run and a
// distributed run of the same sweep write the identical store (same file
// set, same bytes), and a distributed rerun serves entirely from it.
func TestDistributeSharesCheckpointStore(t *testing.T) {
	s := specJSON(t, validSweepSpec)
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	local, distributed := t.TempDir(), t.TempDir()
	wantRep := renderAll(t, s, cells, Options{Parallelism: 2, Checkpoint: local})

	clients := startSweepWorkers(t, 2)
	opt := Options{Parallelism: 2, Checkpoint: distributed}
	if err := Distribute(&opt, s, clients, &dist.Stats{}); err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, s, cells, opt); !bytes.Equal(got, wantRep) {
		t.Error("checkpointed distributed report differs from in-process run")
	}

	// Same store contents, byte for byte.
	wantFiles := checkpointFiles(t, local)
	gotFiles := checkpointFiles(t, distributed)
	if len(gotFiles) == 0 || len(gotFiles) != len(wantFiles) {
		t.Fatalf("distributed store holds %d files, in-process %d", len(gotFiles), len(wantFiles))
	}
	for rel, want := range wantFiles {
		got, ok := gotFiles[rel]
		if !ok {
			t.Errorf("distributed store is missing %s", rel)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("store file %s differs between in-process and distributed runs", rel)
		}
	}

	// A rerun over the warm store settles every task from cache: the workers
	// see no claims (their completion counters stay empty).
	dstats := &dist.Stats{}
	opt2 := Options{Parallelism: 2, Checkpoint: distributed}
	if err := Distribute(&opt2, s, clients, dstats); err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, s, cells, opt2); !bytes.Equal(got, wantRep) {
		t.Error("warm-store distributed rerun differs")
	}
	if wcs := dstats.WorkerCompletions(); len(wcs) != 0 {
		t.Errorf("warm-store rerun still sent %v to workers", wcs)
	}
}

// checkpointFiles reads every task file under a checkpoint root, keyed by
// path relative to the root.
func checkpointFiles(t *testing.T, root string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	paths, err := filepath.Glob(filepath.Join(root, "*", "task-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			t.Fatal(err)
		}
		out[rel] = raw
	}
	return out
}
