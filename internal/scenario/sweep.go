package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"atlarge/internal/cluster"
	"atlarge/internal/sched"
	"atlarge/internal/workload"
)

// Param is one axis assignment of a concrete scenario, rendered as text.
type Param struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// Scenario is one concrete cell of a sweep: a fully resolved workload,
// cluster shape, and policy. Params records the axis assignments that
// produced it (empty for an unswept spec).
type Scenario struct {
	spec     *Spec
	Workload WorkloadSpec
	Cluster  ClusterSpec
	Policy   string
	Params   []Param
}

// ID returns the stable scenario identifier used for seed derivation and in
// reports: the spec name plus the ordered axis assignments.
func (sc *Scenario) ID() string {
	if len(sc.Params) == 0 {
		return sc.spec.Name
	}
	parts := make([]string, len(sc.Params))
	for i, p := range sc.Params {
		parts[i] = p.Axis + "=" + p.Value
	}
	return sc.spec.Name + "/" + strings.Join(parts, ",")
}

// generationAxes are the sweep axes that feed the workload generator's RNG.
// Axes outside this set (policy, load, cluster shape) are excluded from the
// workload seed, so cells differing only in those axes face the identical
// generated job set per replica — paired comparisons (common random
// numbers), not cross-workload sampling noise.
var generationAxes = map[string]bool{"class": true, "arrival": true, "jobs": true}

// WorkloadID identifies the cell's generated workload: the spec name plus
// only the generation-relevant axis assignments.
func (sc *Scenario) WorkloadID() string {
	var parts []string
	for _, p := range sc.Params {
		if generationAxes[p.Axis] {
			parts = append(parts, p.Axis+"="+p.Value)
		}
	}
	return sc.spec.Name + "/workload/" + strings.Join(parts, ",")
}

// axisDef describes one sweepable dimension: how to type-check a swept value
// and how to apply it to a concrete scenario.
type axisDef struct {
	// check validates one swept value (type and name resolution).
	check func(v any) error
	// apply sets the value on the scenario and returns its rendering.
	apply func(sc *Scenario, v any) string
	// canon renders a valid value in canonical form for duplicate
	// detection, so alias spellings ("sci"/"scientific") collide; nil
	// means formatValue is already canonical.
	canon func(v any) string
}

// axes is the catalog of sweepable dimensions.
var axes = map[string]axisDef{
	"policy": {
		check: func(v any) error { return checkName(v, validPolicy) },
		apply: func(sc *Scenario, v any) string {
			sc.Policy = v.(string)
			return v.(string)
		},
		// Resolve through the registry so any spelling sched accepts
		// ("easy-bf", "EASYBF") collapses to one canonical name.
		canon: func(v any) string {
			if isPortfolio(v.(string)) {
				return PolicyPortfolio
			}
			p, _ := sched.PolicyByName(v.(string))
			return p.Name()
		},
	},
	"class": {
		check: func(v any) error {
			return checkName(v, func(s string) error { _, err := workload.ClassByName(s); return err })
		},
		apply: func(sc *Scenario, v any) string {
			sc.Workload.Class = v.(string)
			sc.Workload.Trace = ""
			return v.(string)
		},
		canon: func(v any) string {
			c, _ := workload.ClassByName(v.(string))
			return c.String()
		},
	},
	"arrival": {
		check: func(v any) error {
			return checkName(v, func(s string) error { _, err := workload.ArrivalsByName(s, nil); return err })
		},
		canon: func(v any) string { return strings.ToLower(v.(string)) },
		apply: func(sc *Scenario, v any) string {
			name := v.(string)
			// Keep the base spec's parameter overrides when it names the
			// same family; other families start from their defaults.
			params := map[string]float64(nil)
			if a := sc.spec.Workload.Arrival; a != nil && strings.EqualFold(a.Process, name) {
				params = a.Params
			}
			sc.Workload.Arrival = &ArrivalSpec{Process: name, Params: params}
			return name
		},
	},
	"load": {
		check: func(v any) error { return checkFloat(v, 0) },
		apply: func(sc *Scenario, v any) string {
			sc.Workload.Load = v.(float64)
			return formatValue(v)
		},
	},
	"jobs": {
		check: func(v any) error { return checkInt(v, 1) },
		apply: func(sc *Scenario, v any) string {
			sc.Workload.Jobs = int(v.(float64))
			return formatValue(v)
		},
	},
	"kind": {
		check: func(v any) error {
			return checkName(v, func(s string) error { _, err := cluster.KindByName(s); return err })
		},
		apply: func(sc *Scenario, v any) string {
			sc.Cluster.Kind = v.(string)
			return v.(string)
		},
		canon: func(v any) string {
			k, _ := cluster.KindByName(v.(string))
			return k.String()
		},
	},
	"sites": {
		check: func(v any) error { return checkInt(v, 1) },
		apply: func(sc *Scenario, v any) string {
			sc.Cluster.Sites = int(v.(float64))
			return formatValue(v)
		},
	},
	"machines": {
		check: func(v any) error { return checkInt(v, 1) },
		apply: func(sc *Scenario, v any) string {
			sc.Cluster.Machines = int(v.(float64))
			return formatValue(v)
		},
	},
	"cores": {
		check: func(v any) error { return checkInt(v, 1) },
		apply: func(sc *Scenario, v any) string {
			sc.Cluster.Cores = int(v.(float64))
			return formatValue(v)
		},
	},
}

// AxisNames returns the sweepable axis names in sorted order.
func AxisNames() []string {
	out := make([]string, 0, len(axes))
	for name := range axes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func checkName(v any, resolve func(string) error) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("got %v (%T), want a name string", v, v)
	}
	return resolve(s)
}

func checkFloat(v any, min float64) error {
	f, ok := v.(float64)
	if !ok {
		return fmt.Errorf("got %v (%T), want a number", v, v)
	}
	if f < min {
		return fmt.Errorf("got %g, must be >= %g", f, min)
	}
	return nil
}

func checkInt(v any, min int) error {
	f, ok := v.(float64)
	if !ok {
		return fmt.Errorf("got %v (%T), want an integer", v, v)
	}
	if f != float64(int(f)) || int(f) < min {
		return fmt.Errorf("got %v, must be an integer >= %d", v, min)
	}
	return nil
}

// formatValue renders a swept value for IDs and reports; float formatting is
// the shortest exact form, so IDs are stable.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// maxCells bounds a single expansion; larger sweeps should be split.
const maxCells = 4096

// sweepAxes returns the spec's swept axis names in expansion order
// (lexicographic, since JSON objects carry no order).
func (s *Spec) sweepAxes() []string {
	out := make([]string, 0, len(s.Sweep))
	for name := range s.Sweep {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Spec) validateSweep(bad func(string, ...any)) {
	cells := 1
	for _, name := range s.sweepAxes() {
		def, ok := axes[name]
		if !ok {
			bad("sweep.%s: unknown axis (known: %s)", name, strings.Join(AxisNames(), ", "))
			continue
		}
		values := s.Sweep[name]
		if len(values) == 0 {
			bad("sweep.%s: empty value list", name)
			continue
		}
		cells *= len(values)
		seen := map[string]bool{}
		for i, v := range values {
			if err := def.check(v); err != nil {
				bad("sweep.%s[%d]: %v", name, i, err)
				continue
			}
			// Compare canonical forms so alias spellings ("sci" vs
			// "scientific") count as duplicates too.
			r := formatValue(v)
			if def.canon != nil {
				r = def.canon(v)
			}
			if seen[r] {
				bad("sweep.%s[%d]: duplicate value %s", name, i, formatValue(v))
			} else {
				seen[r] = true
			}
		}
	}
	if cells > maxCells {
		bad("sweep: expands to %d scenarios, max %d; split the sweep", cells, maxCells)
	}
}

// Expand validates the spec and returns the cross-product of its sweep axes
// as concrete scenarios, in deterministic order: axes expand in lexicographic
// name order, values in declared order. A spec without a sweep expands to the
// single base scenario.
func Expand(s *Spec) ([]Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	base := Scenario{spec: s, Workload: s.Workload, Cluster: s.Cluster, Policy: s.Policy}
	cells := []Scenario{base}
	for _, name := range s.sweepAxes() {
		def := axes[name]
		next := make([]Scenario, 0, len(cells)*len(s.Sweep[name]))
		for _, cell := range cells {
			for _, v := range s.Sweep[name] {
				nc := cell
				nc.Params = append(append([]Param(nil), cell.Params...), Param{Axis: name})
				rendered := def.apply(&nc, v)
				nc.Params[len(nc.Params)-1].Value = rendered
				next = append(next, nc)
			}
		}
		cells = next
	}
	return cells, nil
}

// Single validates the spec and returns its base scenario; it rejects specs
// with sweep axes, which need Expand.
func Single(s *Spec) (*Scenario, error) {
	if len(s.Sweep) > 0 {
		return nil, fmt.Errorf("scenario: spec %q has sweep axes (%s); use 'scenario sweep'",
			s.Name, strings.Join(s.sweepAxes(), ", "))
	}
	cells, err := Expand(s)
	if err != nil {
		return nil, err
	}
	return &cells[0], nil
}
