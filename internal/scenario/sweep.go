package scenario

import (
	"fmt"
	"maps"
	"slices"
	"strconv"
	"strings"
)

// Param is one axis assignment of a concrete scenario, rendered as text.
type Param struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// Scenario is one concrete cell of a sweep: a fully resolved parameter set
// for one domain. Params records the axis assignments that produced it
// (empty for an unswept spec).
type Scenario struct {
	spec   *Spec
	domain Domain
	// Workload/Cluster/Policy parameterize the sched and autoscale domains.
	Workload WorkloadSpec
	Cluster  ClusterSpec
	Policy   string
	// Autoscale parameterizes the autoscale domain.
	Autoscale AutoscaleSpec
	// MMOG parameterizes the mmog domain.
	MMOG   MMOGSpec
	Params []Param
}

// ID returns the stable scenario identifier used for seed derivation and in
// reports: the spec name plus the ordered axis assignments.
func (sc *Scenario) ID() string {
	if len(sc.Params) == 0 {
		return sc.spec.Name
	}
	parts := make([]string, len(sc.Params))
	for i, p := range sc.Params {
		parts[i] = p.Axis + "=" + p.Value
	}
	return sc.spec.Name + "/" + strings.Join(parts, ",")
}

// WorkloadID identifies the cell's generated workload: the spec name plus
// only the generation-relevant (Generative) axis assignments. Axes outside
// that set (policy, load, shape, technique) are excluded from the workload
// seed, so cells differing only in those axes face the identical generated
// input per replica — paired comparisons (common random numbers), not
// cross-workload sampling noise.
func (sc *Scenario) WorkloadID() string {
	axes := sc.domain.Axes()
	var parts []string
	for _, p := range sc.Params {
		if axes[p.Axis].Generative {
			parts = append(parts, p.Axis+"="+p.Value)
		}
	}
	return sc.spec.Name + "/workload/" + strings.Join(parts, ",")
}

func checkName(v any, resolve func(string) error) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("got %v (%T), want a name string", v, v)
	}
	return resolve(s)
}

func checkFloat(v any, min float64) error {
	f, ok := v.(float64)
	if !ok {
		return fmt.Errorf("got %v (%T), want a number", v, v)
	}
	if f < min {
		return fmt.Errorf("got %g, must be >= %g", f, min)
	}
	return nil
}

func checkInt(v any, min int) error {
	f, ok := v.(float64)
	if !ok {
		return fmt.Errorf("got %v (%T), want an integer", v, v)
	}
	if f != float64(int(f)) || int(f) < min {
		return fmt.Errorf("got %v, must be an integer >= %d", v, min)
	}
	return nil
}

// formatValue renders a swept value for IDs and reports; float formatting is
// the shortest exact form, so IDs are stable.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// MaxCells bounds a single expansion; larger sweeps should be split.
const MaxCells = 4096

// sweepAxes returns the spec's swept axis names in expansion order
// (lexicographic, since JSON objects carry no order).
func (s *Spec) sweepAxes() []string {
	return slices.Sorted(maps.Keys(s.Sweep))
}

// SweepSize returns the number of cells the spec's sweep would expand to —
// the product of the axis cardinalities, computed from the cardinalities
// alone and saturating at MaxCells+1 — so callers can enforce size bounds
// before any cell is materialized (a hostile spec must never get its
// cross-product allocated first) and without integer overflow however many
// axes multiply together.
func SweepSize(s *Spec) int {
	cells := 1
	for _, values := range s.Sweep {
		if len(values) == 0 {
			continue
		}
		if cells > (MaxCells+1)/len(values) {
			return MaxCells + 1
		}
		cells *= len(values)
	}
	return cells
}

// validateSweep checks every swept axis and value against the domain's axis
// catalog.
func (s *Spec) validateSweep(d Domain, bad func(string, ...any)) {
	axes := d.Axes()
	for _, name := range s.sweepAxes() {
		def, ok := axes[name]
		if !ok {
			bad("sweep.%s: unknown axis (domain %s sweeps: %s)",
				name, d.Name(), strings.Join(AxisNames(d), ", "))
			continue
		}
		values := s.Sweep[name]
		if len(values) == 0 {
			bad("sweep.%s: empty value list", name)
			continue
		}
		seen := map[string]bool{}
		for i, v := range values {
			if err := def.Check(v); err != nil {
				bad("sweep.%s[%d]: %v", name, i, err)
				continue
			}
			// Compare canonical forms so alias spellings ("sci" vs
			// "scientific") count as duplicates too.
			r := formatValue(v)
			if def.Canon != nil {
				r = def.Canon(v)
			}
			if seen[r] {
				bad("sweep.%s[%d]: duplicate value %s", name, i, formatValue(v))
			} else {
				seen[r] = true
			}
		}
	}
	// Bound the expansion from the cardinalities alone (saturating, so a
	// degenerate many-axis sweep cannot overflow the product past the
	// check): the cross-product is never materialized for an oversized
	// sweep.
	if cells := SweepSize(s); cells > MaxCells {
		size := strconv.Itoa(cells)
		if cells == MaxCells+1 {
			size = "more than " + strconv.Itoa(MaxCells)
		}
		bad("sweep: expands to %s scenarios, max %d; split the sweep", size, MaxCells)
	}
}

// Expand validates the spec and returns the cross-product of its sweep axes
// as concrete scenarios, in deterministic order: axes expand in lexicographic
// name order, values in declared order. A spec without a sweep expands to the
// single base scenario.
func Expand(s *Spec) ([]Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d, err := s.domainImpl()
	if err != nil {
		return nil, err
	}
	axes := d.Axes()
	base := Scenario{spec: s, domain: d, Workload: s.Workload, Cluster: s.Cluster, Policy: s.Policy}
	if s.Autoscale != nil {
		base.Autoscale = *s.Autoscale
	}
	if s.MMOG != nil {
		base.MMOG = *s.MMOG
	}
	cells := []Scenario{base}
	for _, name := range s.sweepAxes() {
		def := axes[name]
		next := make([]Scenario, 0, len(cells)*len(s.Sweep[name]))
		for _, cell := range cells {
			for _, v := range s.Sweep[name] {
				nc := cell
				nc.Params = append(append([]Param(nil), cell.Params...), Param{Axis: name})
				rendered := def.Apply(&nc, v)
				nc.Params[len(nc.Params)-1].Value = rendered
				next = append(next, nc)
			}
		}
		cells = next
	}
	return cells, nil
}

// Single validates the spec and returns its base scenario; it rejects specs
// with sweep axes, which need Expand.
func Single(s *Spec) (*Scenario, error) {
	if len(s.Sweep) > 0 {
		return nil, fmt.Errorf("scenario: spec %q has sweep axes (%s); use 'scenario sweep'",
			s.Name, strings.Join(s.sweepAxes(), ", "))
	}
	cells, err := Expand(s)
	if err != nil {
		return nil, err
	}
	return &cells[0], nil
}
