package scenario

import (
	"fmt"
	"strings"

	"atlarge/internal/mmog"
)

// Metric names emitted by mmog-domain scenario runs: per-server interaction
// load under a world partitioning technique.
const (
	MetricEntities    = "entities"
	MetricPeakLoad    = "peak_load"
	MetricMeanMaxLoad = "mean_max_load"
	MetricMeanLoad    = "mean_load"
	MetricImbalance   = "imbalance"
)

func init() { MustRegisterDomain(mmogDomain{}) }

// mmogDomain opens the event-driven MMOG world simulator to the scenario
// engine: a battle-clustered virtual world ticks on the kernel while a
// partitioning technique (static zones, Area-of-Simulation, Mirror
// offloading) splits the interaction load across game servers.
type mmogDomain struct{}

func (mmogDomain) Name() string { return "mmog" }

func (mmogDomain) DefaultObjective() string { return MetricPeakLoad }

func (mmogDomain) Metrics() []MetricDef {
	return []MetricDef{
		{Name: MetricEntities},
		{Name: MetricImbalance},
		{Name: MetricMeanLoad},
		{Name: MetricMeanMaxLoad},
		{Name: MetricPeakLoad},
	}
}

func (d mmogDomain) Validate(s *Spec, bad func(string, ...any)) {
	rejectSection(s.Autoscale != nil, "autoscale", d.Name(), bad)
	rejectSection(s.Policy != "", "policy", d.Name(), bad)
	rejectSection(s.Cluster != (ClusterSpec{}), "cluster", d.Name(), bad)
	rejectSection(s.Workload != (WorkloadSpec{}), "workload", d.Name(), bad)

	m := s.MMOG
	if m == nil {
		m = &MMOGSpec{}
	}
	if m.Partitioner == "" {
		if _, ok := s.Sweep["partitioner"]; !ok {
			bad("mmog.partitioner: required unless swept (known: %s)",
				strings.Join(mmog.PartitionerNames(), ", "))
		}
	} else if _, err := mmog.PartitionerByName(m.Partitioner, 0); err != nil {
		bad("mmog.partitioner: %v", err)
	}
	for _, dim := range []struct {
		name string
		v    int
	}{{"servers", m.Servers}, {"entities", m.Entities}, {"ticks", m.Ticks}} {
		if dim.v < 0 {
			bad("mmog.%s: got %d, must be >= 0 (0 means the default)", dim.name, dim.v)
		}
	}
	if m.Offload < 0 || m.Offload > 0.9 {
		bad("mmog.offload: got %g, must be in [0, 0.9] (0 means 0.5)", m.Offload)
	}
}

func (mmogDomain) Axes() map[string]AxisDef {
	return map[string]AxisDef{
		"partitioner": {
			Check: func(v any) error {
				return checkName(v, func(s string) error { _, err := mmog.PartitionerByName(s, 0); return err })
			},
			Apply: func(sc *Scenario, v any) string {
				sc.MMOG.Partitioner = v.(string)
				return v.(string)
			},
			Canon: func(v any) string {
				p, _ := mmog.PartitionerByName(v.(string), 0)
				return p.Name()
			},
		},
		"servers": {
			Check: func(v any) error { return checkInt(v, 1) },
			Apply: func(sc *Scenario, v any) string {
				sc.MMOG.Servers = int(v.(float64))
				return formatValue(v)
			},
		},
		"entities": {
			Check: func(v any) error { return checkInt(v, 1) },
			Apply: func(sc *Scenario, v any) string {
				sc.MMOG.Entities = int(v.(float64))
				return formatValue(v)
			},
			// The world population shapes world generation: cells differing
			// only in partitioner or servers share the identical world.
			Generative: true,
		},
		"ticks": {
			Check: func(v any) error { return checkInt(v, 1) },
			Apply: func(sc *Scenario, v any) string {
				sc.MMOG.Ticks = int(v.(float64))
				return formatValue(v)
			},
		},
		"offload": {
			// 0 is the unswept "mirror default" sentinel in the spec
			// section; a swept 0 would silently run offload 0.5 under an
			// offload=0 label.
			Check: func(v any) error {
				if err := checkFloat(v, 0); err != nil {
					return err
				}
				f := v.(float64)
				if f == 0 {
					return fmt.Errorf("got 0; a swept offload must be in (0, 0.9] (0 means the mirror default 0.5)")
				}
				if f > 0.9 {
					return fmt.Errorf("got %g, must be <= 0.9", f)
				}
				return nil
			},
			Apply: func(sc *Scenario, v any) string {
				sc.MMOG.Offload = v.(float64)
				return formatValue(v)
			},
		},
	}
}

// Run executes one mmog cell: the world is generated and moved under the
// paired workload seed (cells differing only in technique or server count
// see the identical world and trajectories), partitioned every tick.
func (mmogDomain) Run(sc *Scenario, workloadSeed, simSeed int64) ([]MetricValue, error) {
	m := sc.MMOG
	servers := m.Servers
	if servers <= 0 {
		servers = 8
	}
	entities := m.Entities
	if entities <= 0 {
		entities = 400
	}
	part, err := mmog.PartitionerByName(m.Partitioner, m.Offload)
	if err != nil {
		return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
	}
	cfg := mmog.DefaultWorldSimConfig(entities, servers)
	cfg.Partitioner = part
	if m.Ticks > 0 {
		cfg.Ticks = m.Ticks
	}
	// The world and its movement are the cell's "workload": seeding them
	// from the workload seed pairs cells across technique/server axes. The
	// partitioners themselves are deterministic, so simSeed is unused.
	cfg.Seed = workloadSeed
	_ = simSeed
	res, err := mmog.RunWorldSim(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: cell %s: %w", sc.ID(), err)
	}
	return []MetricValue{
		{Name: MetricEntities, Value: float64(res.Entities)},
		{Name: MetricPeakLoad, Value: res.PeakLoad},
		{Name: MetricMeanMaxLoad, Value: res.MeanMaxLoad},
		{Name: MetricMeanLoad, Value: res.MeanLoad},
		{Name: MetricImbalance, Value: res.Imbalance},
	}, nil
}
