// Package designspace models design-space exploration for MCS (paper §3.3,
// Figures 6 and 7): a synthetic design space in which candidate designs are
// points, problems carry hidden satisficing regions, and four exploration
// processes — free, fix-the-what, fix-the-how, and co-evolving — search it.
//
// The co-evolving process reproduces the Figure 7 narrative: a design team
// struggles on Problem 1 (finding a few solutions among many failures),
// concludes further exploration is too costly, evolves the problem, and then
// finds many new solutions relatively easily on Problem 2.
package designspace

import (
	"fmt"
	"math"
	"math/rand"
)

// Design is a candidate design: a point in the unit hypercube, each
// dimension a design decision (technology choice, pattern, parameter).
type Design []float64

// Problem is a design problem with hidden satisficing regions: a design
// satisfices when it lands within Radius of any region center.
type Problem struct {
	Name    string
	Dim     int
	Centers []Design
	Radius  float64
}

// NewProblem samples a problem with the given number of hidden regions.
func NewProblem(name string, dim, regions int, radius float64, r *rand.Rand) (*Problem, error) {
	if dim < 1 || regions < 1 || radius <= 0 {
		return nil, fmt.Errorf("designspace: invalid problem dim=%d regions=%d radius=%v", dim, regions, radius)
	}
	p := &Problem{Name: name, Dim: dim, Radius: radius}
	for i := 0; i < regions; i++ {
		c := make(Design, dim)
		for d := range c {
			c[d] = r.Float64()
		}
		p.Centers = append(p.Centers, c)
	}
	return p, nil
}

// Score returns the negative distance to the nearest region center (higher
// is better; 0 is a direct hit).
func (p *Problem) Score(d Design) float64 {
	best := math.Inf(1)
	for _, c := range p.Centers {
		dist := 0.0
		for i := range c {
			dd := c[i] - d[i]
			dist += dd * dd
		}
		if dist < best {
			best = dist
		}
	}
	return -math.Sqrt(best)
}

// Satisfices reports whether d lands inside a satisficing region.
func (p *Problem) Satisfices(d Design) bool {
	return -p.Score(d) <= p.Radius
}

// Evolve returns the co-evolved problem: the team reframes (new ecosystem,
// relaxed constraints), modeled as more regions with a larger radius around
// the knowledge gained (the old centers are kept and new ones added).
func (p *Problem) Evolve(extraRegions int, radiusFactor float64, r *rand.Rand) (*Problem, error) {
	if extraRegions < 0 || radiusFactor <= 0 {
		return nil, fmt.Errorf("designspace: invalid evolution extra=%d factor=%v", extraRegions, radiusFactor)
	}
	np := &Problem{
		Name:    p.Name + "'",
		Dim:     p.Dim,
		Radius:  p.Radius * radiusFactor,
		Centers: append([]Design(nil), p.Centers...),
	}
	for i := 0; i < extraRegions; i++ {
		c := make(Design, p.Dim)
		for d := range c {
			c[d] = r.Float64()
		}
		np.Centers = append(np.Centers, c)
	}
	return np, nil
}

// Outcome records one exploration run (one panel of Figure 7).
type Outcome struct {
	Process   string
	Attempts  int
	Solutions int
	Failures  int
	// HitRate is Solutions/Attempts.
	HitRate float64
	// BestScore is the best (closest) score seen.
	BestScore float64
}

func newOutcome(process string) *Outcome {
	return &Outcome{Process: process, BestScore: math.Inf(-1)}
}

func (o *Outcome) record(p *Problem, d Design) bool {
	o.Attempts++
	s := p.Score(d)
	if s > o.BestScore {
		o.BestScore = s
	}
	if p.Satisfices(d) {
		o.Solutions++
		return true
	}
	o.Failures++
	return false
}

func (o *Outcome) finish() {
	if o.Attempts > 0 {
		o.HitRate = float64(o.Solutions) / float64(o.Attempts)
	}
}

// Explorer is one of the Figure 6 exploration processes.
type Explorer interface {
	// Name identifies the process.
	Name() string
	// Explore spends budget attempts on the problem.
	Explore(p *Problem, budget int, r *rand.Rand) *Outcome
}

// Free is pure exploration: uniform random sampling of the design space.
// Radical but unlikely to hit small regions ("its likelihood of success is
// limited by the scale of the design space").
type Free struct{}

// Name implements Explorer.
func (Free) Name() string { return "free" }

// Explore implements Explorer.
func (Free) Explore(p *Problem, budget int, r *rand.Rand) *Outcome {
	o := newOutcome("free")
	for i := 0; i < budget; i++ {
		d := make(Design, p.Dim)
		for j := range d {
			d[j] = r.Float64()
		}
		o.record(p, d)
	}
	o.finish()
	return o
}

// FixWhat fixes the concepts/technology: a fraction of the dimensions is
// pinned to the values of a known reference design; only the remaining
// dimensions are explored. Less radical, higher likelihood near the
// reference.
type FixWhat struct {
	// Reference is the known design whose leading dimensions are pinned.
	Reference Design
	// FixedFraction of dimensions is pinned (0..1).
	FixedFraction float64
}

// Name implements Explorer.
func (FixWhat) Name() string { return "fix-the-what" }

// Explore implements Explorer.
func (f FixWhat) Explore(p *Problem, budget int, r *rand.Rand) *Outcome {
	o := newOutcome("fix-the-what")
	fixed := int(float64(p.Dim) * f.FixedFraction)
	if fixed > len(f.Reference) {
		fixed = len(f.Reference)
	}
	for i := 0; i < budget; i++ {
		d := make(Design, p.Dim)
		for j := range d {
			if j < fixed {
				d[j] = f.Reference[j]
			} else {
				d[j] = r.Float64()
			}
		}
		o.record(p, d)
	}
	o.finish()
	return o
}

// FixHow fixes the relationships/framing: exploration proceeds by local
// mutation (hill climbing) from the best design found so far.
type FixHow struct {
	// StepSigma is the mutation scale.
	StepSigma float64
}

// Name implements Explorer.
func (FixHow) Name() string { return "fix-the-how" }

// Explore implements Explorer.
func (f FixHow) Explore(p *Problem, budget int, r *rand.Rand) *Outcome {
	o := newOutcome("fix-the-how")
	sigma := f.StepSigma
	if sigma <= 0 {
		sigma = 0.1
	}
	cur := make(Design, p.Dim)
	for j := range cur {
		cur[j] = r.Float64()
	}
	curScore := p.Score(cur)
	o.record(p, cur)
	for i := 1; i < budget; i++ {
		cand := make(Design, p.Dim)
		for j := range cand {
			v := cur[j] + sigma*r.NormFloat64()
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			cand[j] = v
		}
		o.record(p, cand)
		if s := p.Score(cand); s > curScore {
			cur, curScore = cand, s
		}
	}
	o.finish()
	return o
}

// CoEvolving is the Figure 7 process: it explores with an inner process
// (fix-the-how by default) and, after StallAfter consecutive failures,
// evolves the problem and continues on the evolved problem.
type CoEvolving struct {
	Inner Explorer
	// StallAfter consecutive failures triggers problem evolution.
	StallAfter int
	// ExtraRegions and RadiusFactor parameterize the evolution.
	ExtraRegions int
	RadiusFactor float64
}

// Name implements Explorer.
func (CoEvolving) Name() string { return "co-evolving" }

// CoEvolvingOutcome extends Outcome with the per-phase split of Figure 7.
type CoEvolvingOutcome struct {
	Outcome
	// Phase1 and Phase2 are the before/after-evolution outcomes.
	Phase1, Phase2 Outcome
	Evolved        bool
}

// Explore implements Explorer (returning the combined outcome; use
// ExploreDetailed for the phase split).
func (c CoEvolving) Explore(p *Problem, budget int, r *rand.Rand) *Outcome {
	det, err := c.ExploreDetailed(p, budget, r)
	if err != nil {
		o := newOutcome(c.Name())
		o.finish()
		return o
	}
	return &det.Outcome
}

// ExploreDetailed runs the co-evolving process with full phase accounting.
func (c CoEvolving) ExploreDetailed(p *Problem, budget int, r *rand.Rand) (*CoEvolvingOutcome, error) {
	inner := c.Inner
	if inner == nil {
		inner = FixHow{StepSigma: 0.1}
	}
	stall := c.StallAfter
	if stall <= 0 {
		stall = budget / 4
	}
	out := &CoEvolvingOutcome{Outcome: *newOutcome(c.Name())}

	// Phase 1: explore the original problem until the stall budget is spent.
	phase1Budget := stall
	if phase1Budget > budget {
		phase1Budget = budget
	}
	o1 := inner.Explore(p, phase1Budget, r)
	out.Phase1 = *o1

	remaining := budget - o1.Attempts
	cur := p
	if remaining > 0 {
		// The team decides further exploration is too difficult/costly and
		// evolves the problem (Figure 7 (b)).
		extra := c.ExtraRegions
		if extra == 0 {
			extra = 3
		}
		factor := c.RadiusFactor
		if factor == 0 {
			factor = 2
		}
		evolved, err := p.Evolve(extra, factor, r)
		if err != nil {
			return nil, err
		}
		cur = evolved
		out.Evolved = true
		o2 := inner.Explore(cur, remaining, r)
		out.Phase2 = *o2
	}
	out.Attempts = out.Phase1.Attempts + out.Phase2.Attempts
	out.Solutions = out.Phase1.Solutions + out.Phase2.Solutions
	out.Failures = out.Phase1.Failures + out.Phase2.Failures
	out.BestScore = math.Max(out.Phase1.BestScore, out.Phase2.BestScore)
	out.finish()
	return out, nil
}

// Figure7Result is the reproduced Figure 7 experiment: all four processes on
// the same problem and budget.
type Figure7Result struct {
	Problem  string
	Budget   int
	Outcomes map[string]*Outcome
	// CoEvolving carries the detailed phase split.
	CoEvolving *CoEvolvingOutcome
}

// RunFigure7 executes the comparison.
func RunFigure7(dim, regions int, radius float64, budget int, seed int64) (*Figure7Result, error) {
	r := rand.New(rand.NewSource(seed))
	p, err := NewProblem("problem-1", dim, regions, radius, r)
	if err != nil {
		return nil, err
	}
	ref := make(Design, dim)
	copy(ref, p.Centers[0]) // an expert hint: known technology near a region
	// Perturb the reference so fix-the-what is informed but not an oracle.
	for i := range ref {
		ref[i] += 0.05 * r.NormFloat64()
	}

	res := &Figure7Result{Problem: p.Name, Budget: budget, Outcomes: map[string]*Outcome{}}
	explorers := []Explorer{
		Free{},
		FixWhat{Reference: ref, FixedFraction: 0.5},
		FixHow{StepSigma: 0.1},
	}
	for _, e := range explorers {
		res.Outcomes[e.Name()] = e.Explore(p, budget, rand.New(rand.NewSource(seed+7)))
	}
	co := CoEvolving{StallAfter: budget / 3}
	det, err := co.ExploreDetailed(p, budget, rand.New(rand.NewSource(seed+7)))
	if err != nil {
		return nil, err
	}
	res.CoEvolving = det
	res.Outcomes[co.Name()] = &det.Outcome
	return res, nil
}
