package designspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewProblemValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := NewProblem("x", 0, 1, 0.1, r); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewProblem("x", 2, 0, 0.1, r); err == nil {
		t.Error("zero regions accepted")
	}
	if _, err := NewProblem("x", 2, 1, 0, r); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestScoreAndSatisfice(t *testing.T) {
	p := &Problem{Name: "t", Dim: 2, Radius: 0.1, Centers: []Design{{0.5, 0.5}}}
	if got := p.Score(Design{0.5, 0.5}); got != 0 {
		t.Errorf("direct hit score = %v, want 0", got)
	}
	if !p.Satisfices(Design{0.55, 0.5}) {
		t.Error("point inside radius not satisficing")
	}
	if p.Satisfices(Design{0.9, 0.9}) {
		t.Error("distant point satisfices")
	}
}

func TestScoreMonotoneProperty(t *testing.T) {
	p := &Problem{Name: "t", Dim: 1, Radius: 0.05, Centers: []Design{{0.5}}}
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		da, db := a-0.5, b-0.5
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		// Closer point must score at least as well.
		if da <= db {
			return p.Score(Design{a}) >= p.Score(Design{b})
		}
		return p.Score(Design{a}) <= p.Score(Design{b})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvolveGrowsProblem(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p, err := NewProblem("p1", 3, 2, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p.Evolve(3, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Centers) != 5 {
		t.Errorf("evolved centers = %d, want 5", len(ev.Centers))
	}
	if ev.Radius != 0.1 {
		t.Errorf("evolved radius = %v, want 0.1", ev.Radius)
	}
	if _, err := p.Evolve(-1, 2, r); err == nil {
		t.Error("negative extra regions accepted")
	}
	if _, err := p.Evolve(1, 0, r); err == nil {
		t.Error("zero radius factor accepted")
	}
}

func TestFreeExplorationBudget(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p, err := NewProblem("p", 4, 3, 0.2, r)
	if err != nil {
		t.Fatal(err)
	}
	o := Free{}.Explore(p, 100, r)
	if o.Attempts != 100 {
		t.Errorf("attempts = %d", o.Attempts)
	}
	if o.Solutions+o.Failures != o.Attempts {
		t.Errorf("solutions %d + failures %d != attempts %d", o.Solutions, o.Failures, o.Attempts)
	}
}

func TestFixWhatBeatsFreeWithGoodReference(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p, err := NewProblem("p", 6, 2, 0.15, r)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(Design, 6)
	copy(ref, p.Centers[0])
	freeHits, fixHits := 0, 0
	for trial := 0; trial < 10; trial++ {
		rr := rand.New(rand.NewSource(int64(trial)))
		freeHits += Free{}.Explore(p, 200, rr).Solutions
		rr = rand.New(rand.NewSource(int64(trial)))
		fixHits += FixWhat{Reference: ref, FixedFraction: 0.5}.Explore(p, 200, rr).Solutions
	}
	if fixHits <= freeHits {
		t.Errorf("fix-the-what hits %d not above free hits %d", fixHits, freeHits)
	}
}

func TestFixHowClimbs(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p, err := NewProblem("p", 4, 1, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	o := FixHow{StepSigma: 0.1}.Explore(p, 500, rand.New(rand.NewSource(6)))
	free := Free{}.Explore(p, 500, rand.New(rand.NewSource(6)))
	// Hill climbing should approach the region at least as closely as
	// uniform sampling.
	if o.BestScore < free.BestScore-0.05 {
		t.Errorf("fix-the-how best %v much worse than free best %v", o.BestScore, free.BestScore)
	}
}

func TestCoEvolvingReproducesFigure7(t *testing.T) {
	res, err := RunFigure7(6, 2, 0.06, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 4 {
		t.Fatalf("processes = %d, want 4", len(res.Outcomes))
	}
	co := res.CoEvolving
	if !co.Evolved {
		t.Fatal("co-evolving did not evolve the problem")
	}
	// Figure 7 (b): after evolving the problem, solutions come relatively
	// easily — the phase-2 hit rate exceeds phase 1's.
	hr1 := 0.0
	if co.Phase1.Attempts > 0 {
		hr1 = float64(co.Phase1.Solutions) / float64(co.Phase1.Attempts)
	}
	hr2 := 0.0
	if co.Phase2.Attempts > 0 {
		hr2 = float64(co.Phase2.Solutions) / float64(co.Phase2.Attempts)
	}
	if hr2 <= hr1 {
		t.Errorf("phase-2 hit rate %v not above phase-1 %v", hr2, hr1)
	}
	// Co-evolving finds more solutions than free exploration on the same
	// budget.
	if co.Solutions <= res.Outcomes["free"].Solutions {
		t.Errorf("co-evolving %d solutions not above free %d",
			co.Solutions, res.Outcomes["free"].Solutions)
	}
}

func TestCoEvolvingBudgetConserved(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p, err := NewProblem("p", 5, 2, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	co := CoEvolving{StallAfter: 50}
	det, err := co.ExploreDetailed(p, 300, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if det.Attempts != 300 {
		t.Errorf("attempts = %d, want full budget 300", det.Attempts)
	}
	if det.Phase1.Attempts != 50 {
		t.Errorf("phase-1 attempts = %d, want stall 50", det.Phase1.Attempts)
	}
}

func TestCoEvolvingDefaults(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	p, err := NewProblem("p", 3, 1, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	o := CoEvolving{}.Explore(p, 100, rand.New(rand.NewSource(10)))
	if o.Attempts != 100 {
		t.Errorf("defaulted co-evolving attempts = %d", o.Attempts)
	}
}
