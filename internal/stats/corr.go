package stats

import (
	"cmp"
	"math"
	"math/rand"
	"slices"
)

// Pearson returns the Pearson correlation coefficient of paired samples. It
// returns NaN when lengths differ, are shorter than two, or either variance
// is zero.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ranks assigns average ranks to xs (ties share the mean rank).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	slices.SortStableFunc(idx, func(a, b int) int { return cmp.Compare(xs[a], xs[b]) })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Spearman returns the Spearman rank correlation of paired samples.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(ranks(xs), ranks(ys))
}

// LinReg holds an ordinary-least-squares fit y = Intercept + Slope*x.
type LinReg struct {
	Slope, Intercept float64
	R2               float64
}

// LinearRegression fits OLS to the paired samples.
func LinearRegression(xs, ys []float64) (LinReg, error) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return LinReg{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinReg{}, ErrEmpty
	}
	slope := sxy / sxx
	fit := LinReg{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	}
	return fit, nil
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// statistic stat over xs, using reps resamples at confidence level conf
// (e.g. 0.95). The RNG makes results reproducible.
func BootstrapCI(xs []float64, stat func([]float64) float64, reps int, conf float64, r *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 || reps <= 0 {
		return math.NaN(), math.NaN()
	}
	est := make([]float64, reps)
	buf := make([]float64, len(xs))
	for i := 0; i < reps; i++ {
		for j := range buf {
			buf[j] = xs[r.Intn(len(xs))]
		}
		est[i] = stat(buf)
	}
	alpha := (1 - conf) / 2
	return Percentile(est, alpha*100), Percentile(est, (1-alpha)*100)
}
