package stats

import "math"

// TwoFactorDecomposition quantifies how much of the variance of a full
// factorial response table is explained by each factor alone versus their
// interaction. It is the statistical core of the PAD-triangle analysis
// (Table 8): the paper's law says graph-processing performance depends on the
// *interaction* of Platform, Algorithm, and Dataset, not on any factor alone.
//
// cells[i][j] holds the (log-)response for level i of factor A and level j of
// factor B. The decomposition follows the standard two-way ANOVA identity:
//
//	SS_total = SS_A + SS_B + SS_interaction
//
// (with one observation per cell, the interaction term absorbs the residual).
type TwoFactorDecomposition struct {
	SSTotal       float64
	SSA           float64
	SSB           float64
	SSInteraction float64
	// Fractions of total sum-of-squares (0..1); NaN when SSTotal == 0.
	FracA, FracB, FracInteraction float64
}

// DecomposeTwoFactor computes the decomposition for a rectangular response
// table. Rows are factor-A levels, columns factor-B levels. All rows must
// have the same length and the table must be at least 2x2.
func DecomposeTwoFactor(cells [][]float64) (TwoFactorDecomposition, error) {
	a := len(cells)
	if a < 2 {
		return TwoFactorDecomposition{}, ErrEmpty
	}
	b := len(cells[0])
	if b < 2 {
		return TwoFactorDecomposition{}, ErrEmpty
	}
	for _, row := range cells {
		if len(row) != b {
			return TwoFactorDecomposition{}, ErrEmpty
		}
	}

	grand := 0.0
	for _, row := range cells {
		for _, v := range row {
			grand += v
		}
	}
	grand /= float64(a * b)

	rowMean := make([]float64, a)
	for i, row := range cells {
		rowMean[i] = Mean(row)
	}
	colMean := make([]float64, b)
	for j := 0; j < b; j++ {
		s := 0.0
		for i := 0; i < a; i++ {
			s += cells[i][j]
		}
		colMean[j] = s / float64(a)
	}

	var d TwoFactorDecomposition
	for i := 0; i < a; i++ {
		da := rowMean[i] - grand
		d.SSA += float64(b) * da * da
	}
	for j := 0; j < b; j++ {
		db := colMean[j] - grand
		d.SSB += float64(a) * db * db
	}
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			dt := cells[i][j] - grand
			d.SSTotal += dt * dt
			di := cells[i][j] - rowMean[i] - colMean[j] + grand
			d.SSInteraction += di * di
		}
	}
	if d.SSTotal > 0 {
		d.FracA = d.SSA / d.SSTotal
		d.FracB = d.SSB / d.SSTotal
		d.FracInteraction = d.SSInteraction / d.SSTotal
	} else {
		d.FracA, d.FracB, d.FracInteraction = math.NaN(), math.NaN(), math.NaN()
	}
	return d, nil
}

// WinnerChanges counts, over the columns of a response table (lower is
// better), how many distinct rows are the best in at least one column, and
// returns that count together with the per-column winner indices. A count
// greater than 1 is the operational signature of the PAD law: no platform
// dominates across workloads.
func WinnerChanges(cells [][]float64) (distinctWinners int, winners []int) {
	if len(cells) == 0 || len(cells[0]) == 0 {
		return 0, nil
	}
	b := len(cells[0])
	winners = make([]int, b)
	seen := make(map[int]bool)
	for j := 0; j < b; j++ {
		best := 0
		for i := 1; i < len(cells); i++ {
			if cells[i][j] < cells[best][j] {
				best = i
			}
		}
		winners[j] = best
		seen[best] = true
	}
	return len(seen), winners
}
