package stats

import "math"

// Violin is the full description of one violin in a violin plot, as used for
// Figure 3 of the paper: mean (star), median (white dot), IQR (thick bar),
// whiskers at 1.5×IQR clipped to the data range, plus a kernel-density
// profile for the violin body.
type Violin struct {
	Category   string
	N          int
	Mean       float64
	Median     float64
	Q1, Q3     float64
	WhiskerLo  float64 // max(min(xs), Q1 - 1.5*IQR)
	WhiskerHi  float64 // min(max(xs), Q3 + 1.5*IQR)
	DensityX   []float64
	DensityY   []float64
	PeakFactor float64 // max density relative to uniform density over range
}

// NewViolin computes the violin summary of xs over points density-evaluation
// points. The density uses a Gaussian kernel with Silverman's rule-of-thumb
// bandwidth.
func NewViolin(category string, xs []float64, points int) (Violin, error) {
	if len(xs) == 0 {
		return Violin{}, ErrEmpty
	}
	if points < 2 {
		points = 2
	}
	fn, err := Summarize(xs)
	if err != nil {
		return Violin{}, err
	}
	iqr := fn.Q3 - fn.Q1
	lo := fn.Q1 - 1.5*iqr
	hi := fn.Q3 + 1.5*iqr
	if lo < fn.Min {
		lo = fn.Min
	}
	if hi > fn.Max {
		hi = fn.Max
	}
	v := Violin{
		Category:  category,
		N:         fn.N,
		Mean:      fn.Mean,
		Median:    fn.Median,
		Q1:        fn.Q1,
		Q3:        fn.Q3,
		WhiskerLo: lo,
		WhiskerHi: hi,
	}
	v.DensityX, v.DensityY = KDE(xs, points)
	rangeW := fn.Max - fn.Min
	if rangeW > 0 {
		uniform := 1 / rangeW
		v.PeakFactor = Max(v.DensityY) / uniform
	}
	return v, nil
}

// KDE evaluates a Gaussian kernel density estimate of xs at points evenly
// spaced locations spanning the data range (padded by one bandwidth on each
// side). It returns the evaluation locations and densities.
func KDE(xs []float64, points int) (locs, dens []float64) {
	if len(xs) == 0 || points < 2 {
		return nil, nil
	}
	h := SilvermanBandwidth(xs)
	if h <= 0 {
		h = 1e-9
	}
	lo, hi := Min(xs)-h, Max(xs)+h
	locs = make([]float64, points)
	dens = make([]float64, points)
	step := (hi - lo) / float64(points-1)
	norm := 1 / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
	for i := 0; i < points; i++ {
		x := lo + float64(i)*step
		locs[i] = x
		d := 0.0
		for _, xi := range xs {
			u := (x - xi) / h
			d += math.Exp(-0.5 * u * u)
		}
		dens[i] = d * norm
	}
	return locs, dens
}

// SilvermanBandwidth returns Silverman's rule-of-thumb KDE bandwidth:
// 0.9 * min(sd, IQR/1.34) * n^(-1/5).
func SilvermanBandwidth(xs []float64) float64 {
	if len(xs) < 2 {
		return 1
	}
	sd := StdDev(xs)
	iqr := IQR(xs) / 1.34
	a := sd
	if iqr > 0 && iqr < a {
		a = iqr
	}
	if a <= 0 {
		a = sd
	}
	if a <= 0 {
		return 1
	}
	return 0.9 * a * math.Pow(float64(len(xs)), -0.2)
}
