package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance(single) = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Errorf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestPercentileMedianIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if got := IQR(xs); got != 2 {
		t.Errorf("IQR = %v, want 2", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(empty) should be NaN")
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("Percentile(single) = %v", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		pa := float64(a % 101)
		pb := float64(b % 101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(raw, pa) <= Percentile(raw, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	fn, err := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if fn.Min != 1 || fn.Max != 9 || fn.Median != 5 || fn.Q1 != 3 || fn.Q3 != 7 || fn.Mean != 5 || fn.N != 9 {
		t.Errorf("Summarize = %+v", fn)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("histogram sizes = %d edges, %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d, want 10", total)
	}
	// Degenerate cases.
	if e, c := Histogram(nil, 5); e != nil || c != nil {
		t.Error("Histogram(empty) should be nil")
	}
	_, c := Histogram([]float64{3, 3, 3}, 2)
	if c[0] != 3 {
		t.Errorf("constant-data histogram = %v", c)
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := ECDF(xs, 2.5); got != 0.5 {
		t.Errorf("ECDF(2.5) = %v, want 0.5", got)
	}
	if got := ECDF(xs, 0); got != 0 {
		t.Errorf("ECDF(0) = %v, want 0", got)
	}
	if got := ECDF(xs, 9); got != 1 {
		t.Errorf("ECDF(9) = %v, want 1", got)
	}
	if !math.IsNaN(ECDF(nil, 1)) {
		t.Error("ECDF(empty) should be NaN")
	}
}

func TestSlowdown(t *testing.T) {
	if got := Slowdown(10, 5); got != 3 {
		t.Errorf("Slowdown = %v, want 3", got)
	}
	if !math.IsNaN(Slowdown(1, 0)) {
		t.Error("Slowdown(run=0) should be NaN")
	}
	if got := BoundedSlowdown(0, 0.001, 10); got != 1 {
		t.Errorf("BoundedSlowdown tiny job = %v, want 1", got)
	}
	if got := BoundedSlowdown(90, 10, 10); got != 10 {
		t.Errorf("BoundedSlowdown = %v, want 10", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CoefficientOfVariation(xs); got != 0 {
		t.Errorf("CV of constants = %v, want 0", got)
	}
	if !math.IsNaN(CoefficientOfVariation([]float64{-1, 1})) {
		t.Error("CV with zero mean should be NaN")
	}
}

func TestNormalizeToBest(t *testing.T) {
	got := NormalizeToBest([]float64{4, 2, 8})
	want := []float64{2, 1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("NormalizeToBest = %v, want %v", got, want)
			break
		}
	}
}

func TestViolin(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64()*0.5 + 2.5
	}
	v, err := NewViolin("design", xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if v.Category != "design" || v.N != 500 {
		t.Errorf("violin meta = %q/%d", v.Category, v.N)
	}
	if !(v.Q1 <= v.Median && v.Median <= v.Q3) {
		t.Errorf("quartiles out of order: %v %v %v", v.Q1, v.Median, v.Q3)
	}
	if v.WhiskerLo > v.Q1 || v.WhiskerHi < v.Q3 {
		t.Errorf("whiskers inside IQR: [%v,%v] vs [%v,%v]", v.WhiskerLo, v.WhiskerHi, v.Q1, v.Q3)
	}
	if len(v.DensityX) != 50 || len(v.DensityY) != 50 {
		t.Errorf("density lengths %d/%d", len(v.DensityX), len(v.DensityY))
	}
	// Density integrates to ~1.
	area := 0.0
	for i := 1; i < len(v.DensityX); i++ {
		dx := v.DensityX[i] - v.DensityX[i-1]
		area += (v.DensityY[i] + v.DensityY[i-1]) / 2 * dx
	}
	if math.Abs(area-1) > 0.1 {
		t.Errorf("KDE area = %v, want ~1", area)
	}
	if _, err := NewViolin("x", nil, 10); err != ErrEmpty {
		t.Errorf("NewViolin(empty) err = %v", err)
	}
}

func TestSilvermanBandwidth(t *testing.T) {
	if got := SilvermanBandwidth([]float64{5}); got != 1 {
		t.Errorf("bandwidth of single point = %v, want fallback 1", got)
	}
	if got := SilvermanBandwidth([]float64{3, 3, 3, 3}); got != 1 {
		t.Errorf("bandwidth of constant data = %v, want fallback 1", got)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := SilvermanBandwidth(xs); got <= 0 {
		t.Errorf("bandwidth = %v, want > 0", got)
	}
}

func TestPearsonSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Pearson linear = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Pearson anti = %v, want -1", got)
	}
	// Spearman is invariant to monotone transforms.
	exp := []float64{math.Exp(1), math.Exp(2), math.Exp(3), math.Exp(4), math.Exp(5)}
	if got := Spearman(xs, exp); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman monotone = %v, want 1", got)
	}
	if !math.IsNaN(Pearson(xs, ys[:3])) {
		t.Error("Pearson length mismatch should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("Pearson zero variance should be NaN")
	}
}

func TestRanksTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestLinearRegression(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) || !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if _, err := LinearRegression([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero-variance x should error")
	}
}

func TestBootstrapCI(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = r.NormFloat64() + 10
	}
	lo, hi := BootstrapCI(xs, Mean, 500, 0.95, r)
	if !(lo < 10 && 10 < hi) {
		t.Errorf("CI [%v,%v] does not cover true mean 10", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Errorf("CI too wide: [%v,%v]", lo, hi)
	}
	lo, hi = BootstrapCI(nil, Mean, 10, 0.95, r)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty bootstrap should be NaN")
	}
}

func TestDecomposeTwoFactorPureMainEffects(t *testing.T) {
	// Additive table: response = rowEffect + colEffect. Interaction ~ 0.
	cells := [][]float64{
		{1 + 10, 1 + 20, 1 + 30},
		{2 + 10, 2 + 20, 2 + 30},
		{5 + 10, 5 + 20, 5 + 30},
	}
	d, err := DecomposeTwoFactor(cells)
	if err != nil {
		t.Fatal(err)
	}
	if d.FracInteraction > 1e-9 {
		t.Errorf("additive table interaction fraction = %v, want ~0", d.FracInteraction)
	}
	if !almostEq(d.FracA+d.FracB+d.FracInteraction, 1, 1e-9) {
		t.Errorf("fractions do not sum to 1: %v", d)
	}
}

func TestDecomposeTwoFactorPureInteraction(t *testing.T) {
	// XOR-style table: zero marginal means, all variance is interaction.
	cells := [][]float64{
		{1, -1},
		{-1, 1},
	}
	d, err := DecomposeTwoFactor(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d.FracInteraction, 1, 1e-12) {
		t.Errorf("pure interaction fraction = %v, want 1", d.FracInteraction)
	}
}

func TestDecomposeTwoFactorErrors(t *testing.T) {
	if _, err := DecomposeTwoFactor([][]float64{{1, 2}}); err == nil {
		t.Error("1-row table should error")
	}
	if _, err := DecomposeTwoFactor([][]float64{{1}, {2}}); err == nil {
		t.Error("1-column table should error")
	}
	if _, err := DecomposeTwoFactor([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table should error")
	}
}

func TestDecomposeSumIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := 2+r.Intn(4), 2+r.Intn(4)
		cells := make([][]float64, a)
		for i := range cells {
			cells[i] = make([]float64, b)
			for j := range cells[i] {
				cells[i][j] = r.NormFloat64() * 10
			}
		}
		d, err := DecomposeTwoFactor(cells)
		if err != nil {
			return false
		}
		return almostEq(d.SSA+d.SSB+d.SSInteraction, d.SSTotal, 1e-6*math.Max(1, d.SSTotal))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWinnerChanges(t *testing.T) {
	cells := [][]float64{
		{1, 9, 9},
		{9, 1, 9},
		{9, 9, 1},
	}
	n, winners := WinnerChanges(cells)
	if n != 3 {
		t.Errorf("distinct winners = %d, want 3", n)
	}
	for j, w := range winners {
		if w != j {
			t.Errorf("winner of col %d = %d", j, w)
		}
	}
	dominant := [][]float64{
		{1, 1, 1},
		{2, 2, 2},
	}
	n, _ = WinnerChanges(dominant)
	if n != 1 {
		t.Errorf("dominant winner count = %d, want 1", n)
	}
	if n, w := WinnerChanges(nil); n != 0 || w != nil {
		t.Error("empty table should yield 0 winners")
	}
}
