// Package stats provides the descriptive statistics used by the experiment
// harnesses: moments, quantiles, histograms, ECDFs, violin summaries (for
// Figure 3), correlation and regression, bootstrap confidence intervals, and
// a two-factor interaction measure (for the Table 8 PAD-triangle analysis).
//
// All functions are pure and operate on plain []float64 so they compose with
// any simulator output.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty data.
var ErrEmpty = errors.New("stats: empty data")

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance, or 0 for fewer than two
// observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// HalfWidth95 returns the half-width of a normal-approximation 95%
// confidence interval for the mean of xs, or 0 for fewer than two
// observations.
func HalfWidth95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the minimum, or +Inf for empty input.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for empty input.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// sorted returns a sorted copy of xs.
func sorted(xs []float64) []float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return cp
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Empty input returns NaN.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := sorted(xs)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// IQR returns the interquartile range (P75 - P25).
func IQR(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := sorted(xs)
	return percentileSorted(s, 75) - percentileSorted(s, 25)
}

// FiveNum is a five-number summary plus mean, the core of a box/violin plot.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) (FiveNum, error) {
	if len(xs) == 0 {
		return FiveNum{}, ErrEmpty
	}
	s := sorted(xs)
	return FiveNum{
		Min:    s[0],
		Q1:     percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		Q3:     percentileSorted(s, 75),
		Max:    s[len(s)-1],
		Mean:   Mean(xs),
		N:      len(xs),
	}, nil
}

// Histogram bins xs into n equal-width bins over [min,max] and returns the
// bin edges (n+1 values) and counts (n values).
func Histogram(xs []float64, n int) (edges []float64, counts []int) {
	if n <= 0 || len(xs) == 0 {
		return nil, nil
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1
	}
	edges = make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	counts = make([]int, n)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}

// ECDF returns the empirical CDF evaluated at x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := 0
	for _, v := range xs {
		if v <= x {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Slowdown returns (wait+run)/run, the canonical scheduling quality metric;
// run must be positive.
func Slowdown(wait, run float64) float64 {
	if run <= 0 {
		return math.NaN()
	}
	return (wait + run) / run
}

// BoundedSlowdown returns the bounded slowdown with threshold tau
// (max(1, (wait+run)/max(run,tau))), the standard fix for tiny jobs.
func BoundedSlowdown(wait, run, tau float64) float64 {
	den := run
	if den < tau {
		den = tau
	}
	if den <= 0 {
		return math.NaN()
	}
	s := (wait + run) / den
	if s < 1 {
		return 1
	}
	return s
}

// CoefficientOfVariation returns stddev/mean, a normalized dispersion measure
// used for performance-variability analyses.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// NormalizeToBest divides every value by the minimum value, producing
// relative-performance rows as used in benchmark reports.
func NormalizeToBest(xs []float64) []float64 {
	best := Min(xs)
	out := make([]float64, len(xs))
	if best == 0 || math.IsInf(best, 1) {
		return out
	}
	for i, x := range xs {
		out[i] = x / best
	}
	return out
}
