package refarch

import (
	"strings"
	"testing"
)

func TestRegistryAddValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(Component{}); err == nil {
		t.Error("unnamed component accepted")
	}
	if err := r.Add(Component{Name: "x", Layer: Layer(99)}); err == nil {
		t.Error("invalid layer accepted")
	}
	if err := r.Add(Component{Name: "x", Layer: LayerBackend}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Component{Name: "x", Layer: LayerBackend}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, ok := r.Get("x"); !ok {
		t.Error("component not retrievable")
	}
	if _, ok := r.Get("ghost"); ok {
		t.Error("phantom component found")
	}
}

func TestStandardRegistry(t *testing.T) {
	r, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() < 15 {
		t.Errorf("registry has %d components, want >= 15", r.Len())
	}
	// Every layer of the new architecture is populated.
	for _, l := range Layers() {
		if len(r.ByLayer(l)) == 0 {
			t.Errorf("layer %s empty", l)
		}
	}
	names := r.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

func TestLayerStrings(t *testing.T) {
	if LayerDevOps.String() != "DevOps" || LayerOperations.String() != "Operations Service" {
		t.Error("layer names wrong")
	}
	if OldProgrammingModel.String() != "Programming Model" {
		t.Error("old layer names wrong")
	}
	if !strings.Contains(Layer(42).String(), "42") {
		t.Error("unknown layer string")
	}
	if !strings.Contains(OldLayer(42).String(), "42") {
		t.Error("unknown old layer string")
	}
}

func TestCoverageMotivatesRevision(t *testing.T) {
	r, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeCoverage(r)
	if rep.NewPlaceable != rep.Total {
		t.Errorf("new architecture places %d/%d", rep.NewPlaceable, rep.Total)
	}
	if rep.OldPlaceable >= rep.Total {
		t.Error("old architecture places everything; revision unmotivated")
	}
	if len(rep.Unplaceable) == 0 {
		t.Fatal("no unplaceable components listed")
	}
	// The paper's named examples must be among the unplaceables.
	unplace := map[string]bool{}
	for _, n := range rep.Unplaceable {
		unplace[n] = true
	}
	for _, want := range []string{"MemEFS", "Pocket", "Crail", "FlashNet", "Graphalytics", "Granula"} {
		if !unplace[want] {
			t.Errorf("%s should be unplaceable in the old architecture", want)
		}
	}
}

func TestIndustryMappingsValidate(t *testing.T) {
	r, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	maps := IndustryMappings()
	if len(maps) < 3 {
		t.Fatalf("mappings = %d", len(maps))
	}
	for _, m := range maps {
		if err := ValidateMapping(r, m); err != nil {
			t.Errorf("mapping %q invalid: %v", m.Ecosystem, err)
		}
		hist := LayerHistogram(r, m)
		total := 0
		for _, c := range hist {
			total += c
		}
		if total != len(m.Components) {
			t.Errorf("mapping %q histogram covers %d/%d", m.Ecosystem, total, len(m.Components))
		}
	}
}

func TestValidateMappingErrors(t *testing.T) {
	r, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMapping(r, EcosystemMapping{Ecosystem: "empty"}); err == nil {
		t.Error("empty mapping accepted")
	}
	if err := ValidateMapping(r, EcosystemMapping{Ecosystem: "ghost", Components: []string{"NoSuch"}}); err == nil {
		t.Error("unknown component accepted")
	}
	single := EcosystemMapping{Ecosystem: "flat", Components: []string{"Pig", "Hive"}}
	if err := ValidateMapping(r, single); err == nil {
		t.Error("single-layer mapping accepted")
	}
}

func TestMapReduceSampleSpansStack(t *testing.T) {
	r, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	m := IndustryMappings()[0]
	hist := LayerHistogram(r, m)
	// The Figure 9 sample touches front-end, back-end, resources, and
	// operations.
	for _, l := range []Layer{LayerFrontend, LayerBackend, LayerResources, LayerOperations} {
		if hist[l] == 0 {
			t.Errorf("MapReduce sample missing layer %s", l)
		}
	}
}
