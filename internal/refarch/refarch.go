// Package refarch implements the paper's Figure 9: the evolving reference
// architecture for datacenter ecosystems. It models both the 2011–2016
// big-data reference architecture (four conceptual layers) and the
// 2016-onward full datacenter architecture (five core layers plus an
// orthogonal DevOps layer with sublayers), a component registry, mappings of
// well-known ecosystems onto the layers, and the coverage analysis that
// motivated the revision: the old architecture cannot place entire classes
// of components that the new one can.
package refarch

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
)

// Layer is a layer of the new (2016+) reference architecture.
type Layer int

// The five core layers plus the orthogonal DevOps layer, numbered as in the
// paper's description ((1) Infrastructure ... (5) Front-end, (6) DevOps).
const (
	LayerInfrastructure Layer = iota + 1
	LayerOperations
	LayerResources
	LayerBackend
	LayerFrontend
	LayerDevOps
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case LayerInfrastructure:
		return "Infrastructure"
	case LayerOperations:
		return "Operations Service"
	case LayerResources:
		return "Resources"
	case LayerBackend:
		return "Back-end"
	case LayerFrontend:
		return "Front-end"
	case LayerDevOps:
		return "DevOps"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Layers lists the new architecture's layers in order.
func Layers() []Layer {
	return []Layer{
		LayerInfrastructure, LayerOperations, LayerResources,
		LayerBackend, LayerFrontend, LayerDevOps,
	}
}

// OldLayer is a layer of the original big-data reference architecture
// (Figure 9 top).
type OldLayer int

// The four conceptual layers of the 2011–2016 architecture.
const (
	OldStorageEngine OldLayer = iota + 1
	OldExecutionEngine
	OldProgrammingModel
	OldHighLevelLanguage
)

// String implements fmt.Stringer.
func (l OldLayer) String() string {
	switch l {
	case OldStorageEngine:
		return "Storage Engine"
	case OldExecutionEngine:
		return "Execution Engine"
	case OldProgrammingModel:
		return "Programming Model"
	case OldHighLevelLanguage:
		return "High-Level Language"
	default:
		return fmt.Sprintf("OldLayer(%d)", int(l))
	}
}

// Component is a named system placed in the architecture.
type Component struct {
	Name string
	// Layer and Sublayer position the component in the new architecture.
	Layer    Layer
	Sublayer string
	// OldLayer positions it in the original architecture; 0 when the old
	// architecture cannot express it (the limitation that forced the
	// revision).
	OldLayer OldLayer
	// CrossesLayers marks systems spanning memory/network/storage
	// boundaries (e.g., in-memory distributed file systems).
	CrossesLayers bool
}

// Registry holds the component catalog.
type Registry struct {
	byName map[string]Component
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Component)}
}

// Add registers a component; duplicate names are an error.
func (r *Registry) Add(c Component) error {
	if c.Name == "" {
		return fmt.Errorf("refarch: component without name")
	}
	if c.Layer < LayerInfrastructure || c.Layer > LayerDevOps {
		return fmt.Errorf("refarch: component %q layer %d invalid", c.Name, c.Layer)
	}
	if _, dup := r.byName[c.Name]; dup {
		return fmt.Errorf("refarch: component %q already registered", c.Name)
	}
	r.byName[c.Name] = c
	return nil
}

// Get looks a component up.
func (r *Registry) Get(name string) (Component, bool) {
	c, ok := r.byName[name]
	return c, ok
}

// Len returns the number of registered components.
func (r *Registry) Len() int { return len(r.byName) }

// Names returns sorted component names.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByLayer returns the components of one layer, sorted by name.
func (r *Registry) ByLayer(l Layer) []Component {
	var out []Component
	for _, c := range r.byName {
		if c.Layer == l {
			out = append(out, c)
		}
	}
	slices.SortStableFunc(out, func(a, b Component) int { return cmp.Compare(a.Name, b.Name) })
	return out
}

// StandardRegistry builds the catalog of Figure 9: the MapReduce sample
// mapping plus the systems the paper lists as unplaceable in the old
// architecture (in-memory file systems, network/storage engines, DevOps
// tools, application-level portals).
func StandardRegistry() (*Registry, error) {
	r := NewRegistry()
	components := []Component{
		// The MapReduce big-data sample (placeable in both architectures).
		{Name: "Pig", Layer: LayerFrontend, Sublayer: "high-level language", OldLayer: OldHighLevelLanguage},
		{Name: "Hive", Layer: LayerFrontend, Sublayer: "high-level language", OldLayer: OldHighLevelLanguage},
		{Name: "MapReduce Model", Layer: LayerFrontend, Sublayer: "programming model", OldLayer: OldProgrammingModel},
		{Name: "Hadoop", Layer: LayerBackend, Sublayer: "execution engine", OldLayer: OldExecutionEngine},
		{Name: "HDFS", Layer: LayerBackend, Sublayer: "storage engine", OldLayer: OldStorageEngine},
		{Name: "YARN", Layer: LayerResources, Sublayer: "resource manager", OldLayer: OldExecutionEngine},
		{Name: "Mesos", Layer: LayerResources, Sublayer: "resource manager"},
		{Name: "ZooKeeper", Layer: LayerOperations, Sublayer: "coordination"},
		// Classes the old architecture could not express.
		{Name: "MemEFS", Layer: LayerBackend, Sublayer: "in-memory file system", CrossesLayers: true},
		{Name: "Pocket", Layer: LayerBackend, Sublayer: "ephemeral storage", CrossesLayers: true},
		{Name: "Crail", Layer: LayerOperations, Sublayer: "high-performance I/O", CrossesLayers: true},
		{Name: "FlashNet", Layer: LayerInfrastructure, Sublayer: "flash/network co-design", CrossesLayers: true},
		{Name: "Graphalytics", Layer: LayerDevOps, Sublayer: "benchmarking"},
		{Name: "Granula", Layer: LayerDevOps, Sublayer: "performance analysis"},
		{Name: "Monitoring Stack", Layer: LayerDevOps, Sublayer: "monitoring"},
		{Name: "Logging Stack", Layer: LayerDevOps, Sublayer: "logging"},
		{Name: "SaaS Portal", Layer: LayerFrontend, Sublayer: "portal"},
		{Name: "Kubernetes", Layer: LayerResources, Sublayer: "orchestration"},
		{Name: "VM Hypervisor", Layer: LayerInfrastructure, Sublayer: "virtualization"},
		{Name: "Object Store", Layer: LayerInfrastructure, Sublayer: "storage", OldLayer: OldStorageEngine},
	}
	for _, c := range components {
		if err := r.Add(c); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// CoverageReport compares old-vs-new architecture coverage over a registry.
type CoverageReport struct {
	Total        int
	OldPlaceable int
	NewPlaceable int
	// Unplaceable lists components the old architecture cannot express.
	Unplaceable []string
}

// AnalyzeCoverage computes the Figure 9 motivation: every component fits the
// new architecture; a substantial fraction does not fit the old one.
func AnalyzeCoverage(r *Registry) CoverageReport {
	rep := CoverageReport{Total: r.Len(), NewPlaceable: r.Len()}
	for _, name := range r.Names() {
		c, _ := r.Get(name)
		if c.OldLayer != 0 && !c.CrossesLayers {
			rep.OldPlaceable++
		} else {
			rep.Unplaceable = append(rep.Unplaceable, c.Name)
		}
	}
	return rep
}

// EcosystemMapping maps a named industry ecosystem onto registry components.
type EcosystemMapping struct {
	Ecosystem  string
	Components []string
}

// IndustryMappings returns the sample mappings the team validated the new
// architecture against.
func IndustryMappings() []EcosystemMapping {
	return []EcosystemMapping{
		{Ecosystem: "MapReduce big-data stack", Components: []string{
			"Pig", "Hive", "MapReduce Model", "Hadoop", "HDFS", "YARN", "Mesos", "ZooKeeper",
		}},
		{Ecosystem: "serverless analytics", Components: []string{
			"Pocket", "Crail", "Kubernetes", "Monitoring Stack",
		}},
		{Ecosystem: "graph-processing DevOps", Components: []string{
			"Graphalytics", "Granula", "Hadoop", "HDFS",
		}},
		{Ecosystem: "web portal on IaaS", Components: []string{
			"SaaS Portal", "Kubernetes", "VM Hypervisor", "Object Store", "Logging Stack",
		}},
	}
}

// ValidateMapping checks that every referenced component exists and that the
// mapping touches at least two distinct layers (an ecosystem is a composite
// by definition).
func ValidateMapping(r *Registry, m EcosystemMapping) error {
	if len(m.Components) == 0 {
		return fmt.Errorf("refarch: mapping %q has no components", m.Ecosystem)
	}
	layers := map[Layer]bool{}
	for _, name := range m.Components {
		c, ok := r.Get(name)
		if !ok {
			return fmt.Errorf("refarch: mapping %q references unknown component %q", m.Ecosystem, name)
		}
		layers[c.Layer] = true
	}
	if len(layers) < 2 {
		return fmt.Errorf("refarch: mapping %q spans only %d layer(s)", m.Ecosystem, len(layers))
	}
	return nil
}

// LayerHistogram counts mapping components per layer.
func LayerHistogram(r *Registry, m EcosystemMapping) map[Layer]int {
	out := make(map[Layer]int)
	for _, name := range m.Components {
		if c, ok := r.Get(name); ok {
			out[c.Layer]++
		}
	}
	return out
}
