package atlarge

import (
	"fmt"
	"sort"

	"atlarge/internal/graphproc"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab8",
		Title: "Table 8: the Graphalytics ecosystem and the PAD/HPAD laws",
		Tags:  []string{"table", "graphproc", "fast"},
		Order: 90,
		Run:   runTab8,
	})
}

func runTab8(seed int64) (*Report, error) {
	cfg := graphproc.DefaultBenchmarkConfig()
	cfg.Seed = seed
	res, err := graphproc.RunBenchmark(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "tab8", Title: "Table 8: the Graphalytics ecosystem and the PAD/HPAD laws"}
	pad, err := graphproc.AnalyzePAD(res)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"PAD law: %d distinct winning platforms; variance split platform=%.2f workload=%.2f interaction=%.2f",
		pad.DistinctWinners, pad.PlatformFrac, pad.WorkloadFrac, pad.InteractionFrac))
	var cols []string
	for c := range pad.WinnerByColumn {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for _, c := range cols {
		rep.Rows = append(rep.Rows, fmt.Sprintf("winner %-18s %s", c, pad.WinnerByColumn[c]))
	}
	hpad, err := graphproc.AnalyzeHPAD(res, cfg.Engines)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"HPAD: winners without H=%d, with H=%d; heterogeneous platform wins %d columns",
		hpad.WinnersWithoutH, hpad.WinnersWithH, hpad.HWinsColumns))
	return rep, nil
}
