package atlarge

import (
	"sort"

	"atlarge/internal/graphproc"
)

func init() {
	defaultRegistry.MustRegister(Experiment{
		ID:    "tab8",
		Title: "Table 8: the Graphalytics ecosystem and the PAD/HPAD laws",
		Tags:  []string{"table", "graphproc", "fast"},
		Order: 90,
		Run:   runTab8,
	})
}

func runTab8(seed int64) (*Report, error) {
	cfg := graphproc.DefaultBenchmarkConfig()
	cfg.Seed = seed
	res, err := graphproc.RunBenchmark(cfg)
	if err != nil {
		return nil, err
	}
	rep := NewReport("tab8", "Table 8: the Graphalytics ecosystem and the PAD/HPAD laws")
	pad, err := graphproc.AnalyzePAD(res)
	if err != nil {
		return nil, err
	}
	rep.AddMetric(Metric{Name: "pad_distinct_winners", Value: float64(pad.DistinctWinners), HigherBetter: true})
	rep.AddMetric(Metric{Name: "variance_frac_platform", Value: pad.PlatformFrac})
	rep.AddMetric(Metric{Name: "variance_frac_workload", Value: pad.WorkloadFrac})
	rep.AddMetric(Metric{Name: "variance_frac_interaction", Value: pad.InteractionFrac})
	var cols []string
	for c := range pad.WinnerByColumn {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	t := rep.AddTable("winners", "column", "winner")
	for _, c := range cols {
		t.AddRow(Label(c), Label(pad.WinnerByColumn[c]))
	}
	hpad, err := graphproc.AnalyzeHPAD(res, cfg.Engines)
	if err != nil {
		return nil, err
	}
	rep.AddMetric(Metric{Name: "hpad_winners_without_h", Value: float64(hpad.WinnersWithoutH), HigherBetter: true})
	rep.AddMetric(Metric{Name: "hpad_winners_with_h", Value: float64(hpad.WinnersWithH), HigherBetter: true})
	rep.AddMetric(Metric{Name: "hpad_h_wins_columns", Value: float64(hpad.HWinsColumns), HigherBetter: true})
	return rep, nil
}
