package atlarge

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomReport generates an arbitrary (but JSON-representable) document:
// the generator for the round-trip property test.
func randomReport(r *rand.Rand) *Report {
	word := func() string {
		words := []string{"P2", "fig8", "alpha", "beta λ", "x", "quoted \"q\"", "tab\tsep"}
		return words[r.Intn(len(words))]
	}
	value := func() float64 {
		// Mix of integers, small decimals, negatives, and extreme magnitudes.
		switch r.Intn(4) {
		case 0:
			return float64(r.Intn(1000) - 500)
		case 1:
			return r.NormFloat64()
		case 2:
			return r.Float64() * 1e12
		default:
			return -r.Float64() / 1e9
		}
	}
	rep := NewReport(word(), word())
	for i := r.Intn(4); i > 0; i-- {
		rep.AddMetric(Metric{
			Name:         word(),
			Value:        value(),
			Unit:         []string{"", "s", "%", "$/h"}[r.Intn(4)],
			HigherBetter: r.Intn(2) == 0,
			CI95:         float64(r.Intn(2)) * r.Float64(),
		})
	}
	for i := r.Intn(3); i > 0; i-- {
		var cols []string
		for c := r.Intn(4); c > 0; c-- {
			cols = append(cols, word())
		}
		tb := rep.AddTable(word(), cols...)
		for rows := r.Intn(4); rows > 0; rows-- {
			var row []Cell
			for c := r.Intn(5); c > 0; c-- {
				if r.Intn(2) == 0 {
					row = append(row, Label(word()))
				} else {
					cell := NumUnit(value(), []string{"", "%.2f", "%.0f"}[r.Intn(3)], []string{"", "s"}[r.Intn(2)])
					if r.Intn(3) == 0 {
						ci := r.Float64()
						cell.CI95 = &ci
					}
					row = append(row, cell)
				}
			}
			tb.AddRow(row...)
		}
	}
	for i := r.Intn(3); i > 0; i-- {
		s := &Series{Name: word(), Unit: []string{"", "jobs"}[r.Intn(2)]}
		n := r.Intn(5)
		withX := r.Intn(2) == 0
		for p := 0; p < n; p++ {
			if withX {
				s.X = append(s.X, float64(p*5))
			}
			s.Y = append(s.Y, value())
		}
		rep.AddSeries(s)
	}
	for i := r.Intn(3); i > 0; i-- {
		rep.AddNote("note %s %d", word(), r.Intn(100))
	}
	return rep
}

// TestReportJSONRoundTripProperty pins that any Report survives JSON
// marshal → unmarshal structurally intact, and that marshalling is
// deterministic (equal documents render equal bytes).
func TestReportJSONRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		rep := randomReport(r)
		b1, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back Report
		if err := json.Unmarshal(b1, &back); err != nil {
			t.Fatalf("case %d: unmarshal: %v\n%s", i, err, b1)
		}
		if !reflect.DeepEqual(rep, &back) {
			t.Fatalf("case %d: round trip changed the document\nbefore: %+v\nafter:  %+v", i, rep, &back)
		}
		b2, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("case %d: re-marshal: %v", i, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("case %d: marshal not deterministic:\n%s\n%s", i, b1, b2)
		}
	}
}

func TestReportLinesDerivedFromStructure(t *testing.T) {
	rep := NewReport("demo", "demo")
	rep.AddMetric(Metric{Name: "mean_slowdown", Value: 2.5, CI95: 0.25})
	rep.AddMetric(Metric{Name: "throughput", Value: 100, Unit: "jobs/s", HigherBetter: true})
	tb := rep.AddTable("policies", "policy", "slowdown")
	tb.AddRow(Label("sjf"), Num(1.5, "%.2f"))
	rep.AddSeries(&Series{Name: "load", X: []float64{0, 10}, Y: []float64{1, 2}})
	rep.AddNote("sjf wins under high load")

	text := strings.Join(rep.Lines(), "\n")
	for _, want := range []string{
		"mean_slowdown", "2.5±0.25",
		"throughput", "100 jobs/s", "(higher is better)",
		"[policies]", "policy", "sjf", "1.50",
		"load: 0:1 10:2",
		"sjf wins under high load",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Lines missing %q:\n%s", want, text)
		}
	}
}

func TestReportCSV(t *testing.T) {
	rep := NewReport("demo", "demo")
	rep.AddMetric(Metric{Name: "m", Value: 1.5, Unit: "s", CI95: 0.5})
	tb := rep.AddTable("t", "who", "what")
	tb.AddRow(Label("a,b"), Num(2, "%.0f"))
	rep.AddSeries(&Series{Name: "s", Y: []float64{9}})
	rep.AddNote("done")
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"section,name,row,col,label,value,unit,ci95",
		"metric,m,,,,1.5,s,0.5",
		`table,t,0,who,"a,b",,,`,
		"table,t,0,what,,2,,",
		"series,s,0,,,9,,",
		"note,,0,,done,,,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestMetricLookupAndDefs(t *testing.T) {
	rep := NewReport("x", "x")
	rep.AddMetric(Metric{Name: "a", Value: 1, HigherBetter: true, Unit: "s"})
	if _, ok := rep.Metric("missing"); ok {
		t.Error("phantom metric found")
	}
	m, ok := rep.Metric("a")
	if !ok || m.Value != 1 {
		t.Errorf("Metric(a) = %+v, %v", m, ok)
	}
	defs := rep.MetricDefs()
	if len(defs) != 1 || !defs[0].HigherBetter || defs[0].Unit != "s" {
		t.Errorf("defs = %+v", defs)
	}
}
